// Sharded epoll gateway vs the legacy poll(2) ingress at 10k concurrent
// sensors (DESIGN.md §15).
//
// Two experiments:
//
//  1. Reactor scaling — the same paced tuple load (many mostly-idle
//     connections, small staggered bursts) through (a) the single
//     poll-reactor TcpIngress and (b) the 4-shard epoll ShardedIngress.
//     poll(2) rescans every registered fd per round, so with 10k sensors
//     of which ~2% burst per round it pays O(connections) per wakeup;
//     epoll_wait returns only the ready fds, O(ready). The container
//     pins this bench to one core, so the structural win is measured as
//     reactor efficiency: tuples ingested per CPU second
//     (getrusage(RUSAGE_SELF) around the run; the sensor fleet lives in
//     a separate process — see below — so parent CPU is gateway +
//     consumer only, identical consumer work in both runs).
//     scaling_ratio = tuples_per_cpu_s(sharded) / tuples_per_cpu_s(poll);
//     acceptance >= 3x in full mode.
//
//  2. Backpressure at scale — 10k concurrent sensors blasting into
//     bounded per-shard baskets with a rate-capped consumer: the
//     per-shard credit valves must engage, resident rows stay under the
//     per-shard bound, and not one tuple is lost end to end (TCP
//     push-back, never drop).
//
// The sensor fleet runs in a forked child re-exec'ed as
// `/proc/self/exe --fleet ...`: the container caps each process at 20k
// fds, so the 10k server-side sockets (parent) and 10k client-side
// sockets (child) must not share a table; exec-after-fork also avoids
// forking a threaded parent into a running fleet.
//
// DATACELL_QUICK=1 shrinks the fleet (CI smoke): the JSON is still
// emitted but the >=3x ratio gate only applies to the full run.
//
// Emits BENCH_gateway_sharded.json.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/receptor.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "net/shard.h"
#include "net/socket.h"
#include "util/clock.h"

namespace datacell {
namespace {

bool Quick() { return std::getenv("DATACELL_QUICK") != nullptr; }

struct FleetConfig {
  uint16_t port = 0;
  size_t sensors = 10'000;
  uint64_t quota = 50;     // tuples per sensor (divisible by burst)
  uint64_t burst = 10;     // tuples per write
  size_t slice = 200;      // connections bursting per round
  useconds_t pacing = 400; // us between rounds (0 = blast)
};

// ---------------------------------------------------------------------------
// Fleet child: S blocking connections, staggered small bursts. Round
// structure: each round a rotating slice of `slice` connections writes one
// `burst`-tuple batch; a full pass over the fleet takes sensors/slice
// rounds; quota/burst passes complete the load. Backpressured connections
// simply block in write(2) — TCP push-back is the experiment.
// ---------------------------------------------------------------------------
int FleetMain(const FleetConfig& cfg) {
  ::signal(SIGPIPE, SIG_IGN);
  const std::string header =
      net::Codec(net::Sensor::StreamSchema()).EncodeSchemaHeader() + "\n";

  std::vector<net::TcpStream> conns;
  conns.reserve(cfg.sensors);
  for (size_t i = 0; i < cfg.sensors; ++i) {
    Result<net::TcpStream> conn = net::TcpStream::Connect("127.0.0.1", cfg.port);
    for (int attempt = 0; attempt < 50 && !conn.ok(); ++attempt) {
      ::usleep(20'000);  // accept queue momentarily full; back off
      conn = net::TcpStream::Connect("127.0.0.1", cfg.port);
    }
    if (!conn.ok()) {
      std::fprintf(stderr, "fleet: connect %zu: %s\n", i,
                   conn.status().ToString().c_str());
      return 2;
    }
    if (!conn->WriteAll(header).ok()) {
      std::fprintf(stderr, "fleet: header %zu failed\n", i);
      return 2;
    }
    conns.push_back(std::move(*conn));
  }

  uint64_t payload = 0;
  const uint64_t passes = cfg.quota / cfg.burst;
  for (uint64_t pass = 0; pass < passes; ++pass) {
    for (size_t start = 0; start < conns.size(); start += cfg.slice) {
      const size_t end = std::min(start + cfg.slice, conns.size());
      for (size_t i = start; i < end; ++i) {
        std::string batch;
        for (uint64_t b = 0; b < cfg.burst; ++b) {
          batch += std::to_string(static_cast<int64_t>(pass)) + "|" +
                   std::to_string(static_cast<int64_t>(payload++)) + "\n";
        }
        if (Status st = conns[i].WriteAll(batch); !st.ok()) {
          std::fprintf(stderr, "fleet: write %zu: %s\n", i,
                       st.ToString().c_str());
          return 2;
        }
      }
      if (cfg.pacing > 0) ::usleep(cfg.pacing);
    }
  }
  for (auto& c : conns) c.ShutdownWrite().IgnoreError();
  return 0;
}

pid_t SpawnFleet(const FleetConfig& cfg) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: re-exec ourselves so the fleet gets a clean, unthreaded
  // process with its own fd table.
  const std::string port = std::to_string(cfg.port);
  const std::string sensors = std::to_string(cfg.sensors);
  const std::string quota = std::to_string(cfg.quota);
  const std::string burst = std::to_string(cfg.burst);
  const std::string slice = std::to_string(cfg.slice);
  const std::string pacing = std::to_string(cfg.pacing);
  ::execl("/proc/self/exe", "bench_gateway_sharded", "--fleet", port.c_str(),
          sensors.c_str(), quota.c_str(), burst.c_str(), slice.c_str(),
          pacing.c_str(), static_cast<char*>(nullptr));
  ::_exit(127);
}

double CpuSeconds() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

struct RunResult {
  double elapsed_s = 0;
  double cpu_s = 0;
  uint64_t received = 0;
  uint64_t consumed = 0;
  uint64_t dropped = 0;
  uint64_t basket_dropped = 0;
  uint64_t connections = 0;
  uint64_t engagements = 0;
  uint64_t peak_resident = 0;  // max over the run's baskets
  int fleet_exit = -1;
};

struct RunConfig {
  size_t shards = 0;  // 0 = legacy single poll reactor
  FleetConfig fleet;
  size_t basket_capacity = 0;  // per basket; 0 = unbounded
  size_t drain_chunk = 0;      // 0 = unthrottled consumer
  Micros drain_tick = 500;
  size_t max_batch_rows = 512;
};

RunResult Run(const RunConfig& cfg) {
  SystemClock* clock = SystemClock::Get();
  const Schema stream = net::Sensor::StreamSchema();
  const size_t nbaskets = cfg.shards == 0 ? 1 : cfg.shards;

  std::vector<core::BasketPtr> baskets;
  std::vector<core::ReceptorPtr> receptors;
  for (size_t k = 0; k < nbaskets; ++k) {
    auto b = std::make_shared<core::Basket>("in.s" + std::to_string(k), stream);
    if (cfg.basket_capacity > 0) b->SetCapacity(cfg.basket_capacity);
    auto r = std::make_shared<core::Receptor>("r.s" + std::to_string(k));
    r->AddOutput(b);
    baskets.push_back(std::move(b));
    receptors.push_back(std::move(r));
  }

  std::unique_ptr<net::TcpIngress> legacy;
  std::unique_ptr<net::ShardedIngress> sharded;
  uint16_t port = 0;
  if (cfg.shards == 0) {
    legacy = std::make_unique<net::TcpIngress>(
        receptors[0], net::Codec(stream), clock, cfg.max_batch_rows,
        /*max_connections=*/19'000);
    if (!legacy->Start().ok()) std::exit(1);
    port = legacy->port();
  } else {
    net::ShardedIngressOptions opts;
    opts.max_batch_rows = cfg.max_batch_rows;
    opts.max_connections = 19'000;
    sharded = std::make_unique<net::ShardedIngress>(
        receptors, net::Codec(stream), clock, opts);
    if (!sharded->Start().ok()) std::exit(1);
    port = sharded->port();
  }
  const auto finished = [&] {
    return cfg.shards == 0 ? legacy->finished() : sharded->finished();
  };
  const auto received = [&] {
    return cfg.shards == 0 ? legacy->tuples_received()
                           : sharded->tuples_received();
  };

  std::atomic<bool> stop_consumer{false};
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    while (true) {
      bool idle = true;
      for (const auto& b : baskets) {
        if (cfg.drain_chunk > 0) {
          const size_t n = std::min(b->size(), cfg.drain_chunk);
          if (n == 0) continue;
          SelVector sel(n);
          for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
          Result<Table> chunk = b->TakeRows(sel);
          if (!chunk.ok()) return;
          consumed.fetch_add(chunk->num_rows());
          idle = false;
        } else {
          const size_t n = b->TakeAll().num_rows();
          consumed.fetch_add(n);
          if (n > 0) idle = false;
        }
      }
      if (idle && stop_consumer.load()) return;
      clock->SleepFor(cfg.drain_tick);
    }
  });

  const double cpu0 = CpuSeconds();
  const Micros t0 = clock->Now();
  FleetConfig fleet = cfg.fleet;
  fleet.port = port;
  pid_t pid = SpawnFleet(fleet);
  if (pid < 0) std::exit(1);

  const uint64_t total = fleet.sensors * fleet.quota;
  for (int waited = 0; waited < 600'000; waited += 5) {
    if (received() >= total && finished()) break;
    clock->SleepFor(5'000);
  }
  const Micros t1 = clock->Now();
  const double cpu1 = CpuSeconds();

  int status = 0;
  ::waitpid(pid, &status, 0);
  stop_consumer.store(true);
  consumer.join();

  RunResult r;
  r.elapsed_s = static_cast<double>(t1 - t0) / 1e6;
  r.cpu_s = cpu1 - cpu0;
  r.received = received();
  r.consumed = consumed.load();
  r.dropped = cfg.shards == 0 ? legacy->tuples_dropped()
                              : sharded->tuples_dropped();
  r.connections = cfg.shards == 0 ? legacy->connections_accepted()
                                  : sharded->connections_accepted();
  r.engagements = cfg.shards == 0 ? legacy->backpressure_engagements()
                                  : sharded->backpressure_engagements();
  for (const auto& b : baskets) {
    r.basket_dropped += b->stats().dropped;
    r.peak_resident = std::max(r.peak_resident,
                               static_cast<uint64_t>(b->stats().peak_rows));
  }
  r.fleet_exit = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (cfg.shards == 0) {
    legacy->Stop();
  } else {
    sharded->Stop();
  }
  return r;
}

}  // namespace
}  // namespace datacell

int main(int argc, char** argv) {
  using datacell::FleetConfig;
  using datacell::RunConfig;
  using datacell::RunResult;

  if (argc >= 8 && std::strcmp(argv[1], "--fleet") == 0) {
    FleetConfig cfg;
    cfg.port = static_cast<uint16_t>(std::atoi(argv[2]));
    cfg.sensors = static_cast<size_t>(std::atol(argv[3]));
    cfg.quota = static_cast<uint64_t>(std::atoll(argv[4]));
    cfg.burst = static_cast<uint64_t>(std::atoll(argv[5]));
    cfg.slice = static_cast<size_t>(std::atol(argv[6]));
    cfg.pacing = static_cast<useconds_t>(std::atol(argv[7]));
    return datacell::FleetMain(cfg);
  }

  const bool quick = datacell::Quick();
  const size_t kShards = 4;

  // Experiment 1: paced mostly-idle fleet, unthrottled consumer.
  FleetConfig paced;
  paced.sensors = quick ? 400 : 10'000;
  paced.quota = quick ? 20 : 50;
  paced.burst = quick ? 5 : 10;
  paced.slice = quick ? 20 : 200;
  paced.pacing = 400;
  const uint64_t scaling_total = paced.sensors * paced.quota;

  std::printf("=== Sharded epoll gateway vs single poll reactor ===\n");
  std::printf("fleet: %zu sensors x %llu tuples (bursts of %llu, %zu "
              "connections/round)%s\n\n",
              paced.sensors, static_cast<unsigned long long>(paced.quota),
              static_cast<unsigned long long>(paced.burst), paced.slice,
              quick ? " [quick]" : "");

  RunConfig legacy_cfg;
  legacy_cfg.shards = 0;
  legacy_cfg.fleet = paced;
  std::printf("--- single poll(2) reactor (legacy TcpIngress) ---\n");
  RunResult lp = datacell::Run(legacy_cfg);
  std::printf("received %llu/%llu, wall %.2f s, reactor+consumer CPU %.2f s, "
              "fleet exit %d\n\n",
              static_cast<unsigned long long>(lp.received),
              static_cast<unsigned long long>(scaling_total), lp.elapsed_s,
              lp.cpu_s, lp.fleet_exit);

  RunConfig sharded_cfg;
  sharded_cfg.shards = kShards;
  sharded_cfg.fleet = paced;
  std::printf("--- %zu epoll reactor shards ---\n", kShards);
  RunResult sh = datacell::Run(sharded_cfg);
  std::printf("received %llu/%llu, wall %.2f s, reactor+consumer CPU %.2f s, "
              "fleet exit %d\n\n",
              static_cast<unsigned long long>(sh.received),
              static_cast<unsigned long long>(scaling_total), sh.elapsed_s,
              sh.cpu_s, sh.fleet_exit);

  // Reactor efficiency: tuples ingested per CPU second. The container is
  // single-core, so parallel wall-clock speedup is unavailable by
  // construction; the poll-vs-epoll structural cost (O(all fds) vs
  // O(ready) per wakeup) shows up directly as CPU burned per tuple.
  const double per_cpu_legacy =
      lp.cpu_s > 0 ? static_cast<double>(lp.received) / lp.cpu_s : 0;
  const double per_cpu_sharded =
      sh.cpu_s > 0 ? static_cast<double>(sh.received) / sh.cpu_s : 0;
  const double scaling_ratio =
      per_cpu_legacy > 0 ? per_cpu_sharded / per_cpu_legacy : 0;
  const double wall_tps_sharded =
      sh.elapsed_s > 0 ? static_cast<double>(sh.received) / sh.elapsed_s : 0;
  const double tps_per_shard = wall_tps_sharded / static_cast<double>(kShards);

  std::printf("tuples/cpu-s: poll %.0f, sharded %.0f -> scaling ratio "
              "%.2fx (gate: >= 3x%s)\n\n",
              per_cpu_legacy, per_cpu_sharded, scaling_ratio,
              quick ? ", waived in quick mode" : "");

  // Experiment 2: the same fleet size blasting into bounded per-shard
  // baskets with a rate-capped consumer — per-shard valves must engage and
  // nothing may be lost.
  FleetConfig blast;
  blast.sensors = paced.sensors;
  blast.quota = 20;
  blast.burst = 20;
  blast.slice = quick ? 50 : 500;
  blast.pacing = 0;
  const uint64_t bp_total = blast.sensors * blast.quota;

  RunConfig bp_cfg;
  bp_cfg.shards = kShards;
  bp_cfg.fleet = blast;
  // Per-shard bound (aggregate matches the unsharded configuration); the
  // quick fleet is 25x smaller, so the bound shrinks with it or the valves
  // would never be exercised.
  bp_cfg.basket_capacity = quick ? 128 : 2'048;
  bp_cfg.drain_chunk = quick ? 64 : 256;
  bp_cfg.drain_tick = 2'000;
  std::printf("--- backpressure at scale: %zu sensors x %llu tuples, "
              "bounded shards ---\n",
              blast.sensors, static_cast<unsigned long long>(blast.quota));
  RunResult bp = datacell::Run(bp_cfg);

  const bool scaling_lossless =
      lp.received == scaling_total && lp.dropped == 0 &&
      lp.basket_dropped == 0 && sh.received == scaling_total &&
      sh.dropped == 0 && sh.basket_dropped == 0 && lp.fleet_exit == 0 &&
      sh.fleet_exit == 0;
  const bool bp_lossless = bp.received == bp_total &&
                           bp.consumed == bp_total && bp.dropped == 0 &&
                           bp.basket_dropped == 0 && bp.fleet_exit == 0;
  const bool bp_bounded = bp.peak_resident <= bp_cfg.basket_capacity;
  const bool bp_engaged = bp.engagements >= 1;
  const bool ratio_ok = quick || scaling_ratio >= 3.0;

  std::printf("received %llu/%llu, consumed %llu, peak shard resident %llu "
              "(bound %zu) %s, valve engaged %llu times -> %s\n\n",
              static_cast<unsigned long long>(bp.received),
              static_cast<unsigned long long>(bp_total),
              static_cast<unsigned long long>(bp.consumed),
              static_cast<unsigned long long>(bp.peak_resident),
              bp_cfg.basket_capacity, bp_bounded ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(bp.engagements),
              bp_lossless ? "lossless" : "LOSS");

  FILE* out = std::fopen("BENCH_gateway_sharded.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_gateway_sharded.json\n");
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"gateway_sharded\",\n"
      "  \"quick\": %s,\n"
      "  \"shards\": %zu,\n"
      "  \"sensors\": %zu,\n"
      "  \"tuples_per_sensor\": %llu,\n"
      "  \"total_tuples\": %llu,\n"
      "  \"poll_elapsed_s\": %.3f,\n"
      "  \"poll_cpu_s\": %.3f,\n"
      "  \"poll_tuples_per_cpu_s\": %.0f,\n"
      "  \"sharded_elapsed_s\": %.3f,\n"
      "  \"sharded_cpu_s\": %.3f,\n"
      "  \"sharded_tuples_per_cpu_s\": %.0f,\n"
      "  \"wall_tps_sharded\": %.0f,\n"
      "  \"tps_per_shard\": %.0f,\n"
      "  \"scaling_ratio\": %.3f,\n"
      "  \"scaling_ratio_basis\": \"tuples_per_cpu_second\",\n"
      "  \"scaling_lossless\": %s,\n"
      "  \"bp_sensors\": %zu,\n"
      "  \"bp_total_tuples\": %llu,\n"
      "  \"bp_capacity_per_shard\": %zu,\n"
      "  \"bp_peak_shard_resident\": %llu,\n"
      "  \"bp_capacity_bound_respected\": %s,\n"
      "  \"bp_backpressure_engagements\": %llu,\n"
      "  \"bp_lossless\": %s\n"
      "}\n",
      quick ? "true" : "false", kShards, paced.sensors,
      static_cast<unsigned long long>(paced.quota),
      static_cast<unsigned long long>(scaling_total), lp.elapsed_s, lp.cpu_s,
      per_cpu_legacy, sh.elapsed_s, sh.cpu_s, per_cpu_sharded,
      wall_tps_sharded, tps_per_shard, scaling_ratio,
      scaling_lossless ? "true" : "false", blast.sensors,
      static_cast<unsigned long long>(bp_total), bp_cfg.basket_capacity,
      static_cast<unsigned long long>(bp.peak_resident),
      bp_bounded ? "true" : "false",
      static_cast<unsigned long long>(bp.engagements),
      bp_lossless ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_gateway_sharded.json\n");

  return (scaling_lossless && bp_lossless && bp_bounded && bp_engaged &&
          ratio_ok)
             ? 0
             : 1;
}
