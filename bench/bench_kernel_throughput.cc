// §6.1 "Pure kernel activity": events/second a factory handles when the
// communication overhead is removed. The paper reports each factory easily
// handling millions of events per second in the query-chain topology —
// orders of magnitude above the TCP-bounded Figure 4 numbers, which is the
// "slack time" observation.
//
// Part 2 measures the vectorized execution layer itself (DESIGN.md §12):
// the same kernel entry points run three ways over identical inputs —
//   A  scalar     forced-scalar backend, inline morsel grid
//   B  simd       best SIMD backend for this host, inline morsel grid
//   C  simd+morsel best backend, morsels dispatched to a worker pool
// Outputs are asserted byte-identical across arms (the determinism
// contract), throughput and per-morsel latency percentiles go to
// BENCH_kernel_throughput.json.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/basket_expression.h"
#include "core/factory.h"
#include "core/scheduler.h"
#include "ops/kernels.h"
#include "ops/morsel.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/simd.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeTuples(size_t n, Random* rng) {
  Table t(StreamSchema());
  t.column(0).ints().reserve(n);
  t.column(1).ints().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng->Uniform(10000)));
  }
  return t;
}

// Query chain of `k` select* factories over batches of `batch` tuples;
// returns events/second per factory (total events processed by all
// factories / total factory execution time).
double RunChain(int k, size_t batch, size_t total_tuples) {
  SystemClock* clock = SystemClock::Get();
  std::vector<core::BasketPtr> baskets;
  auto b0 = std::make_shared<core::Basket>("b0", StreamSchema(),
                                           /*add_arrival_ts=*/false);
  baskets.push_back(b0);
  core::Scheduler sched(clock);
  std::vector<core::FactoryPtr> factories;
  for (int i = 1; i <= k; ++i) {
    baskets.push_back(std::make_shared<core::Basket>(
        "b" + std::to_string(i), StreamSchema(), false));
    core::BasketPtr in = baskets[static_cast<size_t>(i - 1)];
    core::BasketPtr out = baskets[static_cast<size_t>(i)];
    auto f = std::make_shared<core::Factory>(
        "q" + std::to_string(i), [in, out](core::FactoryContext& ctx) -> Status {
          Table t = in->TakeAll();
          if (t.num_rows() == 0) return Status::OK();
          ASSIGN_OR_RETURN(size_t n, out->AppendAligned(t, ctx.now()));
          (void)n;
          return Status::OK();
        });
    f->AddInput(in);
    f->AddOutput(out);
    factories.push_back(f);
    sched.Register(f);
  }
  // Tail drain so the last basket does not grow unboundedly.
  auto sink = std::make_shared<core::Factory>(
      "sink", [last = baskets.back()](core::FactoryContext&) -> Status {
        last->Clear();
        return Status::OK();
      });
  sink->AddInput(baskets.back());
  sched.Register(sink);

  Random rng(99);
  size_t pushed = 0;
  while (pushed < total_tuples) {
    const size_t n = std::min(batch, total_tuples - pushed);
    Table t = MakeTuples(n, &rng);
    auto st = b0->AppendAligned(t, 0);
    if (!st.ok()) return -1;
    auto rounds = sched.RunUntilQuiescent();
    if (!rounds.ok()) return -1;
    pushed += n;
  }
  Micros exec = 0;
  uint64_t events = 0;
  for (const core::FactoryPtr& f : factories) {
    exec += f->stats().total_exec;
    events += total_tuples;  // every factory sees the whole stream
  }
  if (exec <= 0) return 0;
  return static_cast<double>(events) /
         (static_cast<double>(exec) / kMicrosPerSecond);
}

// ---------------------------------------------------------------------------
// Part 2: vectorized kernel arms.

// Wraps an executor and records each morsel's wall-clock duration. Morsel
// indices map to distinct slots, so concurrent workers never race on the
// vector.
class TimingExecutor : public ops::MorselExecutor {
 public:
  explicit TimingExecutor(ops::MorselExecutor* inner) : inner_(inner) {}

  Status Run(size_t n, size_t morsel_rows, const ops::MorselFn& fn) override {
    const size_t base = latencies_.size();
    latencies_.resize(base + ops::NumMorsels(n, morsel_rows));
    const ops::MorselFn timed = [&](size_t m, size_t begin,
                                    size_t end) -> Status {
      SystemClock* wall = SystemClock::Get();
      const Micros t0 = wall->Now();
      Status st = fn(m, begin, end);
      latencies_[base + m] = wall->Now() - t0;
      return st;
    };
    return inner_->Run(n, morsel_rows, timed);
  }

  size_t parallelism() const override { return inner_->parallelism(); }

  std::vector<Micros>& latencies() { return latencies_; }

 private:
  ops::MorselExecutor* inner_;
  std::vector<Micros> latencies_;
};

// Best-of-`reps` throughput in rows/second.
template <typename Body>
double BestRate(size_t rows, int reps, const Body& body) {
  SystemClock* wall = SystemClock::Get();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Micros t0 = wall->Now();
    body();
    const Micros dt = std::max<Micros>(wall->Now() - t0, 1);
    best = std::max(best, static_cast<double>(rows) * 1e6 /
                              static_cast<double>(dt));
  }
  return best;
}

double Percentile(std::vector<Micros> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return static_cast<double>(v[idx]);
}

struct KernelRow {
  const char* name;
  double scalar = 0;
  double simd = 0;
  double simd_morsel = 0;
};

int RunKernelArms() {
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const size_t rows = quick ? 1u << 18 : 1'000'000;
  const int reps = quick ? 2 : 5;

  // Inputs: int64 column at ~50% filter selectivity, a double column, and
  // a raw int64 key span for the hash kernel.
  Random rng(4242);
  Column icol(DataType::kInt64);
  Column dcol(DataType::kDouble);
  std::vector<int64_t> keys(rows);
  icol.ints().reserve(rows);
  dcol.doubles().reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Uniform(10000));
    icol.AppendInt(v);
    dcol.AppendDouble(static_cast<double>(v) * 0.5);
    keys[i] = v;
  }
  const int64_t threshold = 5000;  // ~50% pass

  // Arm C pool: at least one extra worker so morsels actually dispatch
  // even on a single-core host (the inline path would otherwise make
  // C identical to B and record no per-morsel latencies).
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  ops::PoolMorselExecutor pool(hw - 1);
  TimingExecutor timing(&pool);

  KernelRow filter{"filter"}, aggregate{"aggregate"}, hash{"hash"};
  SelVector sel_a, sel_b, sel_c;
  simd::FoldState fold_a, fold_b, fold_c;
  std::vector<uint64_t> hash_a, hash_b, hash_c;

  // A: forced scalar, inline grid.
  simd::SetForceScalar(true);
  filter.scalar = BestRate(rows, reps, [&] {
    sel_a = ops::kern::SelectCmpI64Col(icol, simd::Cmp::kLt, threshold);
  });
  aggregate.scalar =
      BestRate(rows, reps, [&] { fold_a = ops::kern::FoldNumeric(dcol); });
  hash.scalar = BestRate(rows, reps, [&] {
    ops::kern::HashI64Span(keys.data(), keys.size(), &hash_a);
  });
  simd::SetForceScalar(false);

  // B: best backend, inline grid.
  filter.simd = BestRate(rows, reps, [&] {
    sel_b = ops::kern::SelectCmpI64Col(icol, simd::Cmp::kLt, threshold);
  });
  aggregate.simd =
      BestRate(rows, reps, [&] { fold_b = ops::kern::FoldNumeric(dcol); });
  hash.simd = BestRate(rows, reps, [&] {
    ops::kern::HashI64Span(keys.data(), keys.size(), &hash_b);
  });

  // C: best backend, morsels dispatched to the pool.
  {
    ops::ScopedMorselExecutor scoped(&timing);
    filter.simd_morsel = BestRate(rows, reps, [&] {
      sel_c = ops::kern::SelectCmpI64Col(icol, simd::Cmp::kLt, threshold);
    });
    aggregate.simd_morsel =
        BestRate(rows, reps, [&] { fold_c = ops::kern::FoldNumeric(dcol); });
    hash.simd_morsel = BestRate(rows, reps, [&] {
      ops::kern::HashI64Span(keys.data(), keys.size(), &hash_c);
    });
  }

  // Determinism contract: every arm must produce byte-identical results.
  if (sel_a != sel_b || sel_a != sel_c) {
    std::fprintf(stderr, "FATAL: filter outputs differ across arms\n");
    return 1;
  }
  if (std::memcmp(&fold_a.dsum, &fold_b.dsum, sizeof(double)) != 0 ||
      std::memcmp(&fold_a.dsum, &fold_c.dsum, sizeof(double)) != 0 ||
      fold_a.count != fold_c.count ||
      std::memcmp(&fold_a.dmin, &fold_c.dmin, sizeof(double)) != 0 ||
      std::memcmp(&fold_a.dmax, &fold_c.dmax, sizeof(double)) != 0) {
    std::fprintf(stderr, "FATAL: aggregate outputs differ across arms\n");
    return 1;
  }
  if (hash_a != hash_b || hash_a != hash_c) {
    std::fprintf(stderr, "FATAL: hash outputs differ across arms\n");
    return 1;
  }

  const double p50 = Percentile(timing.latencies(), 0.50);
  const double p95 = Percentile(timing.latencies(), 0.95);
  const double p99 = Percentile(timing.latencies(), 0.99);

  std::printf("\n=== Vectorized kernels: scalar vs %s vs %s+morsel ===\n",
              simd::LevelName(simd::ActiveLevel()),
              simd::LevelName(simd::ActiveLevel()));
  std::printf("%zu rows, best of %d reps, pool parallelism %zu\n\n", rows,
              reps, timing.parallelism());
  std::printf("%10s %14s %14s %14s %9s\n", "kernel", "scalar r/s", "simd r/s",
              "simd+morsel", "speedup");
  double best_speedup = 0.0;
  for (const KernelRow* k : {&filter, &aggregate, &hash}) {
    const double sp = k->scalar > 0 ? k->simd_morsel / k->scalar : 0.0;
    best_speedup = std::max(best_speedup, sp);
    std::printf("%10s %14.3g %14.3g %14.3g %8.2fx\n", k->name, k->scalar,
                k->simd, k->simd_morsel, sp);
  }
  std::printf("\nmorsel latency: p50 %.1f us, p95 %.1f us, p99 %.1f us "
              "(%zu morsels)\n",
              p50, p95, p99, timing.latencies().size());

  FILE* out = std::fopen("BENCH_kernel_throughput.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kernel_throughput.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"kernel_throughput\",\n");
  std::fprintf(out, "  \"rows\": %zu,\n  \"reps\": %d,\n  \"quick\": %s,\n",
               rows, reps, quick ? "true" : "false");
  std::fprintf(out, "  \"simd_level\": \"%s\",\n",
               simd::LevelName(simd::ActiveLevel()));
  std::fprintf(out, "  \"pool_parallelism\": %zu,\n", timing.parallelism());
  std::fprintf(out, "  \"kernels\": [\n");
  const KernelRow* rows_out[] = {&filter, &aggregate, &hash};
  for (size_t i = 0; i < 3; ++i) {
    const KernelRow* k = rows_out[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"scalar_rows_per_s\": %.1f, "
                 "\"simd_rows_per_s\": %.1f, \"simd_morsel_rows_per_s\": "
                 "%.1f, \"simd_speedup\": %.3f, \"simd_morsel_speedup\": "
                 "%.3f}%s\n",
                 k->name, k->scalar, k->simd, k->simd_morsel,
                 k->scalar > 0 ? k->simd / k->scalar : 0.0,
                 k->scalar > 0 ? k->simd_morsel / k->scalar : 0.0,
                 i + 1 < 3 ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"morsel_count\": %zu,\n", timing.latencies().size());
  std::fprintf(out, "  \"morsel_p50_us\": %.1f,\n", p50);
  std::fprintf(out, "  \"morsel_p95_us\": %.1f,\n", p95);
  std::fprintf(out, "  \"morsel_p99_us\": %.1f,\n", p99);
  std::fprintf(out, "  \"best_simd_morsel_speedup\": %.3f,\n", best_speedup);
  std::fprintf(out, "  \"simd_morsel_ge_4x\": %s\n",
               best_speedup >= 4.0 ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_kernel_throughput.json (best speedup %.2fx)\n",
              best_speedup);
  return 0;
}

}  // namespace
}  // namespace datacell

int main() {
  std::printf("=== Pure kernel activity (no communication) ===\n");
  std::printf("query chain, batches through the scheduler; events/s per "
              "factory\n\n");
  std::printf("%8s %10s %12s %18s\n", "queries", "batch", "tuples",
              "events/s/factory");
  const bool quick = std::getenv("DATACELL_QUICK") != nullptr;
  const size_t total = quick ? 200'000 : 2'000'000;
  for (int k : {1, 4, 8}) {
    for (size_t batch : {10'000ULL, 100'000ULL}) {
      double rate = datacell::RunChain(k, batch, total);
      std::printf("%8d %10zu %12zu %18.3g\n", k, batch, total, rate);
    }
  }
  std::printf("\nshape check (paper): millions of events/s per factory — "
              "orders of magnitude above the TCP path of Figure 4.\n");
  return datacell::RunKernelArms();
}
