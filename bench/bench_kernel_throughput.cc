// §6.1 "Pure kernel activity": events/second a factory handles when the
// communication overhead is removed. The paper reports each factory easily
// handling millions of events per second in the query-chain topology —
// orders of magnitude above the TCP-bounded Figure 4 numbers, which is the
// "slack time" observation.

#include <cstdio>
#include <vector>

#include "core/basket.h"
#include "core/basket_expression.h"
#include "core/factory.h"
#include "core/scheduler.h"
#include "util/clock.h"
#include "util/random.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeTuples(size_t n, Random* rng) {
  Table t(StreamSchema());
  t.column(0).ints().reserve(n);
  t.column(1).ints().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(static_cast<int64_t>(rng->Uniform(10000)));
  }
  return t;
}

// Query chain of `k` select* factories over batches of `batch` tuples;
// returns events/second per factory (total events processed by all
// factories / total factory execution time).
double RunChain(int k, size_t batch, size_t total_tuples) {
  SystemClock* clock = SystemClock::Get();
  std::vector<core::BasketPtr> baskets;
  auto b0 = std::make_shared<core::Basket>("b0", StreamSchema(),
                                           /*add_arrival_ts=*/false);
  baskets.push_back(b0);
  core::Scheduler sched(clock);
  std::vector<core::FactoryPtr> factories;
  for (int i = 1; i <= k; ++i) {
    baskets.push_back(std::make_shared<core::Basket>(
        "b" + std::to_string(i), StreamSchema(), false));
    core::BasketPtr in = baskets[static_cast<size_t>(i - 1)];
    core::BasketPtr out = baskets[static_cast<size_t>(i)];
    auto f = std::make_shared<core::Factory>(
        "q" + std::to_string(i), [in, out](core::FactoryContext& ctx) -> Status {
          Table t = in->TakeAll();
          if (t.num_rows() == 0) return Status::OK();
          ASSIGN_OR_RETURN(size_t n, out->AppendAligned(t, ctx.now()));
          (void)n;
          return Status::OK();
        });
    f->AddInput(in);
    f->AddOutput(out);
    factories.push_back(f);
    sched.Register(f);
  }
  // Tail drain so the last basket does not grow unboundedly.
  auto sink = std::make_shared<core::Factory>(
      "sink", [last = baskets.back()](core::FactoryContext&) -> Status {
        last->Clear();
        return Status::OK();
      });
  sink->AddInput(baskets.back());
  sched.Register(sink);

  Random rng(99);
  size_t pushed = 0;
  while (pushed < total_tuples) {
    const size_t n = std::min(batch, total_tuples - pushed);
    Table t = MakeTuples(n, &rng);
    auto st = b0->AppendAligned(t, 0);
    if (!st.ok()) return -1;
    auto rounds = sched.RunUntilQuiescent();
    if (!rounds.ok()) return -1;
    pushed += n;
  }
  Micros exec = 0;
  uint64_t events = 0;
  for (const core::FactoryPtr& f : factories) {
    exec += f->stats().total_exec;
    events += total_tuples;  // every factory sees the whole stream
  }
  if (exec <= 0) return 0;
  return static_cast<double>(events) /
         (static_cast<double>(exec) / kMicrosPerSecond);
}

}  // namespace
}  // namespace datacell

int main() {
  std::printf("=== Pure kernel activity (no communication) ===\n");
  std::printf("query chain, batches through the scheduler; events/s per "
              "factory\n\n");
  std::printf("%8s %10s %12s %18s\n", "queries", "batch", "tuples",
              "events/s/factory");
  const size_t total = 2'000'000;
  for (int k : {1, 4, 8}) {
    for (size_t batch : {10'000ULL, 100'000ULL}) {
      double rate = datacell::RunChain(k, batch, total);
      std::printf("%8d %10zu %12zu %18.3g\n", k, batch, total, rate);
    }
  }
  std::printf("\nshape check (paper): millions of events/s per factory — "
              "orders of magnitude above the TCP path of Figure 4.\n");
  return 0;
}
