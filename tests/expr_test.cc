#include <gtest/gtest.h>

#include "expr/eval.h"
#include "expr/expr.h"

namespace datacell {
namespace {

Table SampleTable() {
  Table t(Schema({{"a", DataType::kInt64},
                  {"b", DataType::kDouble},
                  {"s", DataType::kString}}));
  EXPECT_TRUE(t.AppendRow({Value(1), Value(1.5), Value("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(2), Value(-2.0), Value("y")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(3), Value(0.5), Value("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(4), Value(9.0), Value("z")}).ok());
  return t;
}

TEST(ExprTest, ToStringRendering) {
  ExprPtr e = Expr::Bin(BinaryOp::kAnd,
                        Expr::Bin(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(1)),
                        Expr::IsNull(Expr::Col("b"), true));
  EXPECT_EQ(e->ToString(), "((a > 1) and (b is not null))");
}

TEST(ExprTest, InferTypes) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(*InferExprType(
                s, *Expr::Bin(BinaryOp::kAdd, Expr::Col("a"), Expr::Lit(1))),
            DataType::kInt64);
  EXPECT_EQ(*InferExprType(
                s, *Expr::Bin(BinaryOp::kMul, Expr::Col("a"), Expr::Col("b"))),
            DataType::kDouble);
  EXPECT_EQ(*InferExprType(
                s, *Expr::Bin(BinaryOp::kLt, Expr::Col("a"), Expr::Lit(3))),
            DataType::kBool);
  EXPECT_FALSE(InferExprType(s, *Expr::Col("missing")).ok());
  EXPECT_FALSE(
      InferExprType(s, *Expr::Bin(BinaryOp::kAnd, Expr::Col("a"), Expr::Col("b")))
          .ok());
}

TEST(EvalConstTest, ArithmeticAndComparison) {
  EvalContext ctx;
  auto v = EvalConst(*Expr::Bin(BinaryOp::kAdd, Expr::Lit(2), Expr::Lit(3)), ctx);
  EXPECT_EQ(*v, Value(5));
  v = EvalConst(*Expr::Bin(BinaryOp::kDiv, Expr::Lit(7), Expr::Lit(2)), ctx);
  EXPECT_EQ(*v, Value(3));  // integer division
  v = EvalConst(*Expr::Bin(BinaryOp::kDiv, Expr::Lit(7.0), Expr::Lit(2)), ctx);
  EXPECT_EQ(*v, Value(3.5));
  v = EvalConst(*Expr::Bin(BinaryOp::kLt, Expr::Lit("a"), Expr::Lit("b")), ctx);
  EXPECT_EQ(*v, Value(true));
}

TEST(EvalConstTest, DivisionByZeroIsNull) {
  EvalContext ctx;
  auto v = EvalConst(*Expr::Bin(BinaryOp::kDiv, Expr::Lit(1), Expr::Lit(0)), ctx);
  EXPECT_TRUE(v->is_null());
  v = EvalConst(*Expr::Bin(BinaryOp::kMod, Expr::Lit(1), Expr::Lit(0)), ctx);
  EXPECT_TRUE(v->is_null());
}

TEST(EvalConstTest, NullPropagates) {
  EvalContext ctx;
  auto v = EvalConst(
      *Expr::Bin(BinaryOp::kAdd, Expr::Lit(Value::Null()), Expr::Lit(3)), ctx);
  EXPECT_TRUE(v->is_null());
}

TEST(EvalConstTest, NowUsesContext) {
  EvalContext ctx;
  ctx.now = 12345;
  auto v = EvalConst(*Expr::Call("now", {}), ctx);
  EXPECT_EQ(*v, Value(int64_t{12345}));
}

TEST(EvalConstTest, Variables) {
  std::map<std::string, Value> vars{{"threshold", Value(10)}};
  EvalContext ctx;
  ctx.variables = &vars;
  auto v = EvalConst(*Expr::Col("threshold"), ctx);
  EXPECT_EQ(*v, Value(10));
  EXPECT_FALSE(EvalConst(*Expr::Col("nope"), ctx).ok());
}

TEST(EvalConstTest, Functions) {
  EvalContext ctx;
  EXPECT_EQ(*EvalConst(*Expr::Call("abs", {Expr::Lit(-4)}), ctx), Value(4));
  EXPECT_EQ(*EvalConst(*Expr::Call("length", {Expr::Lit("abc")}), ctx),
            Value(3));
  EXPECT_EQ(*EvalConst(*Expr::Call("least", {Expr::Lit(4), Expr::Lit(2)}), ctx),
            Value(2));
  EXPECT_EQ(
      *EvalConst(*Expr::Call("greatest", {Expr::Lit(4), Expr::Lit(2)}), ctx),
      Value(4));
  EXPECT_EQ(*EvalConst(*Expr::Call("cast_int", {Expr::Lit(2.9)}), ctx),
            Value(2));
}

TEST(EvalScalarTest, ColumnArithmetic) {
  Table t = SampleTable();
  EvalContext ctx;
  auto col = EvalScalar(
      t, *Expr::Bin(BinaryOp::kMul, Expr::Col("a"), Expr::Lit(10)), ctx);
  ASSERT_TRUE(col.ok());
  ASSERT_EQ(col->size(), 4u);
  EXPECT_EQ(col->ints()[2], 30);
}

TEST(EvalScalarTest, MixedIntDoublePromotes) {
  Table t = SampleTable();
  EvalContext ctx;
  auto col =
      EvalScalar(t, *Expr::Bin(BinaryOp::kAdd, Expr::Col("a"), Expr::Col("b")),
                 ctx);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(col->doubles()[0], 2.5);
}

TEST(EvalScalarTest, UnaryOps) {
  Table t = SampleTable();
  EvalContext ctx;
  auto neg = EvalScalar(t, *Expr::Un(UnaryOp::kNeg, Expr::Col("a")), ctx);
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->ints()[3], -4);
  auto b = EvalScalar(
      t,
      *Expr::Un(UnaryOp::kNot,
                Expr::Bin(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(2))),
      ctx);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->bools()[0], 1);
  EXPECT_EQ(b->bools()[3], 0);
}

TEST(EvalScalarTest, DivByZeroColumnGivesNull) {
  Table t(Schema({{"x", DataType::kInt64}, {"y", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(10), Value(0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(10), Value(2)}).ok());
  EvalContext ctx;
  auto col =
      EvalScalar(t, *Expr::Bin(BinaryOp::kDiv, Expr::Col("x"), Expr::Col("y")),
                 ctx);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE(col->IsValid(0));
  EXPECT_EQ(col->ints()[1], 5);
}

TEST(EvalPredicateTest, FastPathIntComparison) {
  Table t = SampleTable();
  EvalContext ctx;
  auto sel =
      EvalPredicate(t, *Expr::Bin(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(2)),
                    ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{2, 3}));
}

TEST(EvalPredicateTest, FlippedComparison) {
  Table t = SampleTable();
  EvalContext ctx;
  // 2 < a  ==  a > 2
  auto sel =
      EvalPredicate(t, *Expr::Bin(BinaryOp::kLt, Expr::Lit(2), Expr::Col("a")),
                    ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{2, 3}));
}

TEST(EvalPredicateTest, AndRefines) {
  Table t = SampleTable();
  EvalContext ctx;
  ExprPtr pred = Expr::Bin(
      BinaryOp::kAnd, Expr::Bin(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(1)),
      Expr::Bin(BinaryOp::kLt, Expr::Col("b"), Expr::Lit(1.0)));
  auto sel = EvalPredicate(t, *pred, ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{1, 2}));
}

TEST(EvalPredicateTest, OrUnions) {
  Table t = SampleTable();
  EvalContext ctx;
  ExprPtr pred = Expr::Bin(
      BinaryOp::kOr, Expr::Bin(BinaryOp::kEq, Expr::Col("a"), Expr::Lit(1)),
      Expr::Bin(BinaryOp::kEq, Expr::Col("s"), Expr::Lit("z")));
  auto sel = EvalPredicate(t, *pred, ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 3}));
}

TEST(EvalPredicateTest, StringEquality) {
  Table t = SampleTable();
  EvalContext ctx;
  auto sel = EvalPredicate(
      t, *Expr::Bin(BinaryOp::kEq, Expr::Col("s"), Expr::Lit("x")), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 2}));
}

TEST(EvalPredicateTest, NullsNeverMatch) {
  Table t(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value(3)}).ok());
  EvalContext ctx;
  auto sel = EvalPredicate(
      t, *Expr::Bin(BinaryOp::kGe, Expr::Col("x"), Expr::Lit(0)), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 2}));
  // IS NULL finds the hole.
  sel = EvalPredicate(t, *Expr::IsNull(Expr::Col("x"), false), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{1}));
  sel = EvalPredicate(t, *Expr::IsNull(Expr::Col("x"), true), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 2}));
}

TEST(EvalPredicateTest, CandidateRestriction) {
  Table t = SampleTable();
  EvalContext ctx;
  SelVector cand{0, 3};
  auto sel = EvalPredicateOn(
      t, *Expr::Bin(BinaryOp::kGt, Expr::Col("a"), Expr::Lit(0)), cand, ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 3}));
}

TEST(EvalPredicateTest, VariableInPredicate) {
  Table t = SampleTable();
  std::map<std::string, Value> vars{{"v1", Value(2)}};
  EvalContext ctx;
  ctx.variables = &vars;
  auto sel = EvalPredicate(
      t, *Expr::Bin(BinaryOp::kLe, Expr::Col("a"), Expr::Col("v1")), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 1}));
}

TEST(EvalPredicateTest, NonBooleanPredicateRejected) {
  Table t = SampleTable();
  EvalContext ctx;
  auto sel = EvalPredicate(t, *Expr::Col("a"), ctx);
  EXPECT_FALSE(sel.ok());
}

TEST(EvalScalarTest, TimestampArithmeticKeepsType) {
  Table t(Schema({{"ts", DataType::kTimestamp}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{5'000'000})}).ok());
  EvalContext ctx;
  // ts + int -> timestamp (an interval shift).
  auto shifted = EvalScalar(
      t, *Expr::Bin(BinaryOp::kAdd, Expr::Col("ts"), Expr::Lit(int64_t{1'000'000})),
      ctx);
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(shifted->type(), DataType::kTimestamp);
  EXPECT_EQ(shifted->ints()[0], 6'000'000);
}

TEST(EvalScalarTest, ModuloSemantics) {
  Table t(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(7)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(-7)}).ok());
  EvalContext ctx;
  auto r = EvalScalar(t, *Expr::Bin(BinaryOp::kMod, Expr::Col("x"), Expr::Lit(3)),
                      ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ints()[0], 1);
  EXPECT_EQ(r->ints()[1], -1);  // C++ truncating semantics
}

TEST(EvalPredicateTest, BoolColumnComparison) {
  Table t(Schema({{"flag", DataType::kBool}}));
  ASSERT_TRUE(t.AppendRow({Value(true)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(false)}).ok());
  EvalContext ctx;
  auto sel = EvalPredicate(
      t, *Expr::Bin(BinaryOp::kEq, Expr::Col("flag"), Expr::Lit(true)), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0}));
}

TEST(EvalPredicateTest, MixedIntColumnDoubleConstant) {
  Table t(Schema({{"x", DataType::kInt64}}));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i)}).ok());
  }
  EvalContext ctx;
  auto sel = EvalPredicate(
      t, *Expr::Bin(BinaryOp::kGt, Expr::Col("x"), Expr::Lit(2.5)), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{3, 4}));
}

TEST(EvalPredicateTest, StringVsNumberComparisonRejected) {
  Table t(Schema({{"s", DataType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  EvalContext ctx;
  EXPECT_FALSE(
      EvalPredicate(t, *Expr::Bin(BinaryOp::kLt, Expr::Col("s"), Expr::Lit(5)),
                    ctx)
          .ok());
}

// Property sweep: for random int columns, the fast path (col cmp const)
// agrees with the generic evaluator (forced by wrapping in NOT(NOT(x))).
class PredicateEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PredicateEquivalenceTest, FastAndSlowAgree) {
  auto [seed, threshold] = GetParam();
  Table t(Schema({{"x", DataType::kInt64}}));
  uint64_t state = static_cast<uint64_t>(seed) * 2654435761u + 1;
  for (int i = 0; i < 200; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    ASSERT_TRUE(t.AppendRow({Value(static_cast<int64_t>(state % 100))}).ok());
  }
  EvalContext ctx;
  ExprPtr cmp = Expr::Bin(BinaryOp::kLt, Expr::Col("x"), Expr::Lit(threshold));
  ExprPtr slow = Expr::Un(UnaryOp::kNot, Expr::Un(UnaryOp::kNot, cmp));
  auto fast_sel = EvalPredicate(t, *cmp, ctx);
  auto slow_sel = EvalPredicate(t, *slow, ctx);
  ASSERT_TRUE(fast_sel.ok());
  ASSERT_TRUE(slow_sel.ok());
  EXPECT_EQ(*fast_sel, *slow_sel);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredicateEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0, 10, 50, 99, 100)));

}  // namespace
}  // namespace datacell
