// Snapshot-isolation coverage for the zero-copy basket hot path: COW
// column snapshots must stay immutable under every writer-side mutation
// (append, erase, prefix consumption, compaction, clear), and FIFO prefix
// consumption must be an O(1) head advance with amortized physical
// reclamation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "column/column.h"
#include "column/table.h"
#include "core/basket.h"
#include "core/basket_expression.h"

namespace datacell {
namespace {

Column IntColumn(int64_t first, size_t n) {
  Column c(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) c.AppendInt(first + static_cast<int64_t>(i));
  return c;
}

std::vector<int64_t> ToVector(const ColumnView<int64_t>& v) {
  return std::vector<int64_t>(v.begin(), v.end());
}

// --- Column-level COW ------------------------------------------------------

TEST(ColumnCowTest, CopyIsZeroCopyUntilMutation) {
  Column base = IntColumn(0, 100);
  Column snap = base;
  EXPECT_TRUE(snap.SharesStorageWith(base));
  // Reading does not detach.
  EXPECT_EQ(snap.size(), 100u);
  EXPECT_TRUE(snap.SharesStorageWith(base));
  // Writer mutation detaches the writer, not the snapshot.
  base.AppendInt(100);
  EXPECT_FALSE(snap.SharesStorageWith(base));
  EXPECT_EQ(base.size(), 101u);
  EXPECT_EQ(snap.size(), 100u);
}

TEST(ColumnCowTest, SnapshotUnaffectedByWriterAppends) {
  Column base = IntColumn(0, 10);
  const Column snap = base;
  const std::vector<int64_t> before = ToVector(snap.ints());
  for (int64_t v = 10; v < 50; ++v) base.AppendInt(v);
  EXPECT_EQ(ToVector(snap.ints()), before);
}

TEST(ColumnCowTest, SnapshotUnaffectedByWriterEraseAndClear) {
  Column base = IntColumn(0, 20);
  const Column snap = base;
  base.EraseRows({0, 1, 2, 5, 7});
  base.Clear();
  EXPECT_EQ(base.size(), 0u);
  ASSERT_EQ(snap.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(snap.ints()[i], static_cast<int64_t>(i));
  }
}

TEST(ColumnCowTest, SnapshotOfHeadOffsetColumnSeesLiveRowsOnly) {
  Column base = IntColumn(0, 100);
  base.ErasePrefix(40);  // below compaction threshold: head advances
  ASSERT_EQ(base.head(), 40u);
  const Column snap = base;
  EXPECT_EQ(snap.size(), 60u);
  EXPECT_EQ(snap.ints()[0], 40);
  // The writer consuming further does not move the snapshot's view.
  base.ErasePrefix(10);
  EXPECT_EQ(snap.ints()[0], 40);
  EXPECT_EQ(base.ints()[0], 50);
}

TEST(ColumnCowTest, ValidityVectorIsSnapshotIsolatedToo) {
  Column base(DataType::kInt64);
  base.AppendInt(1);
  base.AppendNull();
  base.AppendInt(3);
  const Column snap = base;
  base.AppendNull();
  base.EraseRows({1});
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_TRUE(snap.IsValid(0));
  EXPECT_FALSE(snap.IsValid(1));
  EXPECT_TRUE(snap.IsValid(2));
  ASSERT_EQ(base.size(), 3u);
  EXPECT_TRUE(base.IsValid(0));
  EXPECT_TRUE(base.IsValid(1));
  EXPECT_FALSE(base.IsValid(2));
}

TEST(ColumnCowTest, StringColumnsShareAndDetach) {
  Column base(DataType::kString);
  base.AppendString("alpha");
  base.AppendString("beta");
  Column snap = base;
  EXPECT_TRUE(snap.SharesStorageWith(base));
  base.AppendString("gamma");
  EXPECT_FALSE(snap.SharesStorageWith(base));
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.strings()[1], "beta");
}

// --- O(1) prefix consumption and compaction --------------------------------

TEST(ColumnHeadTest, ErasePrefixAdvancesHeadWithoutCopy) {
  Column c = IntColumn(0, 100);
  c.ErasePrefix(30);
  EXPECT_EQ(c.size(), 70u);
  EXPECT_EQ(c.head(), 30u);
  EXPECT_EQ(c.PhysicalSize(), 100u);  // nothing reclaimed yet
  EXPECT_EQ(c.ints()[0], 30);
  EXPECT_EQ(c.GetValue(0), Value(int64_t{30}));
}

TEST(ColumnHeadTest, FullConsumptionResetsStorage) {
  Column c = IntColumn(0, 1000);
  c.ErasePrefix(1000);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.head(), 0u);
  EXPECT_EQ(c.PhysicalSize(), 0u);
}

TEST(ColumnHeadTest, CompactionReclaimsLargeConsumedPrefix) {
  // Consume more than half of a large buffer: the amortized compaction
  // must fold the head away.
  Column c = IntColumn(0, 1000);
  c.ErasePrefix(600);
  EXPECT_EQ(c.size(), 400u);
  EXPECT_EQ(c.head(), 0u);
  EXPECT_EQ(c.PhysicalSize(), 400u);
  EXPECT_EQ(c.ints()[0], 600);
}

TEST(ColumnHeadTest, CompactionDeferredWhileSnapshotPinsBuffer) {
  Column c = IntColumn(0, 1000);
  const Column snap = c;
  c.ErasePrefix(600);
  // Shared storage: the head advances but physical reclamation waits.
  EXPECT_EQ(c.size(), 400u);
  EXPECT_EQ(c.head(), 600u);
  EXPECT_EQ(c.PhysicalSize(), 1000u);
  EXPECT_TRUE(c.SharesStorageWith(snap));
  EXPECT_EQ(snap.size(), 1000u);
  // The writer's next mutation detaches and drops the stale prefix.
  c.AppendInt(1000);
  EXPECT_FALSE(c.SharesStorageWith(snap));
  EXPECT_EQ(c.head(), 0u);
  EXPECT_EQ(c.PhysicalSize(), 401u);
  EXPECT_EQ(c.ints()[0], 600);
  EXPECT_EQ(c.ints()[400], 1000);
  EXPECT_EQ(snap.size(), 1000u);
  EXPECT_EQ(snap.ints()[0], 0);
}

TEST(ColumnHeadTest, EraseRowsDetectsPrefixSelection) {
  Column c = IntColumn(0, 500);
  SelVector prefix(300);
  for (uint32_t i = 0; i < 300; ++i) prefix[i] = i;
  c.EraseRows(prefix);
  // Routed through ErasePrefix: compaction policy applies (600 > 256 and
  // more than half the buffer), so this also reclaims.
  EXPECT_EQ(c.size(), 200u);
  EXPECT_EQ(c.ints()[0], 300);
}

TEST(ColumnHeadTest, NonPrefixEraseStillWorksWithHeadOffset) {
  Column c = IntColumn(0, 10);
  c.ErasePrefix(4);  // live rows 4..9
  c.EraseRows({1, 3});  // logical rows: values 5 and 7
  const Column& view = c;
  EXPECT_EQ(ToVector(view.ints()), (std::vector<int64_t>{4, 6, 8, 9}));
}

TEST(ColumnHeadTest, MutableAccessorFoldsHeadAway) {
  Column c = IntColumn(0, 10);
  c.ErasePrefix(4);
  std::vector<int64_t>& raw = c.ints();
  // Physical and logical indexing must coincide for the raw vector.
  ASSERT_EQ(raw.size(), 6u);
  EXPECT_EQ(raw[0], 4);
  EXPECT_EQ(c.head(), 0u);
}

TEST(ColumnHeadTest, AppendAfterPrefixConsumptionKeepsHead) {
  // Steady-state FIFO: append after consume must not trigger a physical
  // shift per append (the typed append path leaves the head in place).
  Column c = IntColumn(0, 100);
  c.ErasePrefix(50);
  ASSERT_EQ(c.head(), 50u);
  c.AppendInt(100);
  EXPECT_EQ(c.head(), 50u);
  EXPECT_EQ(c.size(), 51u);
  EXPECT_EQ(c.ints()[50], 100);
}

// --- Table-level snapshots --------------------------------------------------

TEST(TableSnapshotTest, CopySharesAllColumns) {
  Table t(Schema({{"a", DataType::kInt64}, {"b", DataType::kString}}));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value("y")}).ok());
  const Table snap = t;
  EXPECT_TRUE(snap.column(0).SharesStorageWith(t.column(0)));
  EXPECT_TRUE(snap.column(1).SharesStorageWith(t.column(1)));
  ASSERT_TRUE(t.AppendRow({Value(int64_t{3}), Value("z")}).ok());
  EXPECT_EQ(snap.num_rows(), 2u);
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(snap.GetRow(1)[1], Value("y"));
}

TEST(TableSnapshotTest, ErasePrefixIsUniformAcrossColumns) {
  Table t(Schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}}));
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i), Value(i * 0.5)}).ok());
  }
  ASSERT_TRUE(t.ErasePrefix(4).ok());
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_EQ(t.GetRow(0)[0], Value(int64_t{4}));
  EXPECT_EQ(t.GetRow(0)[1], Value(2.0));
  // Over-long prefixes clamp.
  ASSERT_TRUE(t.ErasePrefix(100).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

// --- Basket-level snapshots -------------------------------------------------

core::BasketPtr MakeBasket(const std::string& name) {
  return std::make_shared<core::Basket>(
      name, Schema({{"v", DataType::kInt64}}), /*add_arrival_ts=*/false);
}

Table OneColBatch(int64_t first, size_t n) {
  Table t(Schema({{"v", DataType::kInt64}}));
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(t.AppendRow({Value(first + static_cast<int64_t>(i))}).ok());
  }
  return t;
}

TEST(BasketSnapshotTest, PeekIsZeroCopyAndImmutable) {
  auto b = MakeBasket("b");
  ASSERT_TRUE(b->Append(OneColBatch(0, 100), 0).ok());
  const Table snap = b->Peek();
  EXPECT_TRUE(snap.column(0).SharesStorageWith(b->contents().column(0)));

  // Appends, prefix consumption, and a full clear: the snapshot holds.
  ASSERT_TRUE(b->Append(OneColBatch(100, 50), 0).ok());
  ASSERT_TRUE(b->ErasePrefix(80).ok());
  b->Clear();
  EXPECT_EQ(b->size(), 0u);
  ASSERT_EQ(snap.num_rows(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(snap.column(0).ints()[i], static_cast<int64_t>(i));
  }
}

TEST(BasketSnapshotTest, ErasePrefixIsHeadAdvance) {
  auto b = MakeBasket("b");
  ASSERT_TRUE(b->Append(OneColBatch(0, 100), 0).ok());
  ASSERT_TRUE(b->ErasePrefix(30).ok());
  EXPECT_EQ(b->size(), 70u);
  EXPECT_EQ(b->contents().column(0).head(), 30u);
  EXPECT_EQ(b->stats().consumed, 30u);
  // Version must bump so scheduler wakeups still fire on consumption.
  const uint64_t v = b->version();
  ASSERT_TRUE(b->ErasePrefix(10).ok());
  EXPECT_GT(b->version(), v);
  // Consuming nothing does not signal.
  const uint64_t v2 = b->version();
  ASSERT_TRUE(b->ErasePrefix(0).ok());
  EXPECT_EQ(b->version(), v2);
}

TEST(BasketSnapshotTest, TakeAllAfterSnapshotLeavesSnapshotIntact) {
  auto b = MakeBasket("b");
  ASSERT_TRUE(b->Append(OneColBatch(0, 10), 0).ok());
  const Table snap = b->Peek();
  Table taken = b->TakeAll();
  EXPECT_EQ(taken.num_rows(), 10u);
  EXPECT_EQ(snap.num_rows(), 10u);
  EXPECT_EQ(b->size(), 0u);
  // The moved-out table still shares with the snapshot until mutated.
  EXPECT_TRUE(taken.column(0).SharesStorageWith(snap.column(0)));
}

TEST(BasketSnapshotTest, BatchConsumeEvaluatesOnSnapshot) {
  auto b = MakeBasket("b");
  ASSERT_TRUE(b->Append(OneColBatch(0, 50), 0).ok());
  core::BasketExpression be(b);
  be.Consume(core::ConsumePolicy::kBatch);
  EvalContext ctx;
  auto result = be.Evaluate(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 50u);
  EXPECT_EQ(b->size(), 0u);  // batch fully consumed
  EXPECT_EQ(result->column(0).ints()[49], 49);
}

TEST(BasketSnapshotTest, TopNBatchDoesNotConsumeUnderfilledWindow) {
  auto b = MakeBasket("b");
  ASSERT_TRUE(b->Append(OneColBatch(0, 3), 0).ok());
  core::BasketExpression be(b);
  be.Consume(core::ConsumePolicy::kBatch);
  be.OrderBy({{Expr::Col("v"), /*ascending=*/false}});
  be.Top(5);
  EvalContext ctx;
  auto result = be.Evaluate(ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 0u);
  // The early-clear optimization must not fire for top-n windows.
  EXPECT_EQ(b->size(), 3u);
  // Once fillable, it consumes the whole batch.
  ASSERT_TRUE(b->Append(OneColBatch(3, 4), 0).ok());
  auto full = be.Evaluate(ctx);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->num_rows(), 5u);
  EXPECT_EQ(full->column(0).ints()[0], 6);
  EXPECT_EQ(b->size(), 0u);
}

}  // namespace
}  // namespace datacell
