// Kill-and-recover suite for the durability tier: crash-atomic catalog
// saves, the replayable ingest log (including a SIGKILL'd writer), basket
// spill-to-disk with zero loss, durable emitter staging, and an end-to-end
// datacell_server crash/restart cycle driven over real sockets.
//
// The crash tests fork a child that writes in a loop and SIGKILL it at an
// arbitrary point — the recovery invariants must hold no matter where the
// kill landed.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/engine.h"
#include "core/receptor.h"
#include "net/actuator.h"
#include "net/sensor.h"
#include "storage/chunk.h"
#include "storage/ingest_log.h"
#include "storage/pager.h"
#include "storage/persist.h"
#include "util/clock.h"

namespace datacell {
namespace {

namespace fs = std::filesystem;
using core::Basket;
using storage::BufferPool;
using storage::FsyncPolicy;
using storage::IngestLog;
using storage::Pager;
using storage::ReplayIngestLog;
using storage::ReplayReport;

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datacell_durability_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    storage::SetSpillEnabled(true);  // restore the global gate
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static Schema IntSchema() { return Schema({{"v", DataType::kInt64}}); }

  static Table IntBatch(int64_t first, size_t n) {
    Table t(IntSchema());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(t.AppendRow({Value(first + static_cast<int64_t>(i))}).ok());
    }
    return t;
  }

  // Reaps `pid` after SIGKILL.
  static void KillAndReap(pid_t pid) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
  }

  fs::path dir_;
};

// --- Crash-atomic catalog saves ---------------------------------------------

// A child overwrites the same catalog in a tight loop, alternating between
// two versions of table "t" (1 row vs 2 rows). SIGKILL at arbitrary points;
// after every kill the directory must load cleanly and "t" must be exactly
// one of the two versions — never a torn in-between file.
TEST_F(DurabilityTest, CatalogSaveSurvivesSigkill) {
  const std::string cat_dir = Path("catalog");
  {
    Catalog seed;
    auto t = seed.CreateTable("t", IntSchema());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->AppendRow({Value(1)}).ok());
    ASSERT_TRUE(storage::SaveCatalog(seed, cat_dir).ok());
  }
  for (int round = 0; round < 6; ++round) {
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: alternate versions forever until killed.
      Catalog one;
      auto t1 = one.CreateTable("t", IntSchema());
      if (!t1.ok() || !(*t1)->AppendRow({Value(1)}).ok()) ::_exit(1);
      Catalog two;
      auto t2 = two.CreateTable("t", IntSchema());
      if (!t2.ok() || !(*t2)->AppendRow({Value(10)}).ok() ||
          !(*t2)->AppendRow({Value(20)}).ok()) {
        ::_exit(1);
      }
      for (;;) {
        if (!storage::SaveCatalog(one, cat_dir).ok()) ::_exit(2);
        if (!storage::SaveCatalog(two, cat_dir).ok()) ::_exit(2);
      }
    }
    ::usleep(1000 * (round + 1) + 700 * round);
    KillAndReap(pid);

    Catalog loaded;
    Status st = storage::LoadCatalog(&loaded, cat_dir);
    ASSERT_TRUE(st.ok()) << "round " << round << ": " << st.ToString();
    auto t = loaded.GetTable("t");
    ASSERT_TRUE(t.ok()) << "round " << round;
    const size_t rows = (*t)->num_rows();
    ASSERT_TRUE(rows == 1 || rows == 2)
        << "round " << round << ": torn catalog, " << rows << " rows";
    if (rows == 1) {
      EXPECT_EQ((*t)->GetRow(0)[0], Value(1));
    } else {
      EXPECT_EQ((*t)->GetRow(0)[0], Value(10));
      EXPECT_EQ((*t)->GetRow(1)[0], Value(20));
    }
  }
  // Leftover .tmp files from the kill must not confuse the next full save.
  Catalog final_cat;
  auto t = final_cat.CreateTable("t", IntSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->AppendRow({Value(99)}).ok());
  ASSERT_TRUE(storage::SaveCatalog(final_cat, cat_dir).ok());
  for (const fs::directory_entry& e : fs::directory_iterator(cat_dir)) {
    EXPECT_EQ(e.path().extension(), ".dct") << e.path();
  }
}

// --- Ingest log: round trip, recovery, replay -------------------------------

TEST_F(DurabilityTest, IngestLogRoundTripAndReopen) {
  const std::string path = Path("ingest.log");
  {
    auto log = IngestLog::Open(path, FsyncPolicy::kNone);
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    auto seqs = (*log)->AppendBatch("s", IntBatch(0, 5));
    ASSERT_TRUE(seqs.ok());
    EXPECT_EQ(seqs->first, 1u);
    EXPECT_EQ(seqs->second, 5u);
    seqs = (*log)->AppendBatch("s", IntBatch(5, 3));
    ASSERT_TRUE(seqs.ok());
    EXPECT_EQ(seqs->second, 8u);
    ASSERT_TRUE((*log)->Ack("s", 3).ok());
    EXPECT_EQ((*log)->last_seq("s"), 8u);
    EXPECT_EQ((*log)->acked("s"), 3u);
  }
  // Reopen recovers per-stream sequence state; new appends continue it.
  auto log = IngestLog::Open(path, FsyncPolicy::kNone);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->last_seq("s"), 8u);
  EXPECT_EQ((*log)->acked("s"), 3u);
  auto seqs = (*log)->AppendBatch("s", IntBatch(8, 2));
  ASSERT_TRUE(seqs.ok());
  EXPECT_EQ(seqs->first, 9u);
  EXPECT_EQ(seqs->second, 10u);

  // Replay skips everything acked and delivers 4..10 in order.
  std::vector<uint64_t> seen_seqs;
  std::vector<int64_t> seen_vals;
  auto report = ReplayIngestLog(
      path, [&](const std::string& stream, const Schema& schema, uint64_t seq,
                const Row& row) -> Status {
        EXPECT_EQ(stream, "s");
        EXPECT_EQ(schema, IntSchema());
        seen_seqs.push_back(seq);
        seen_vals.push_back(row[0].int_value());
        return Status::OK();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->replayed, 7u);
  EXPECT_EQ(report->skipped_acked, 3u);
  EXPECT_FALSE(report->torn_tail);
  ASSERT_EQ(seen_seqs.size(), 7u);
  for (size_t i = 0; i < seen_seqs.size(); ++i) {
    EXPECT_EQ(seen_seqs[i], 4 + i);
    EXPECT_EQ(seen_vals[i], static_cast<int64_t>(3 + i));
  }
}

TEST_F(DurabilityTest, IngestLogTornTailTolerated) {
  const std::string path = Path("torn.log");
  {
    auto log = IngestLog::Open(path, FsyncPolicy::kNone);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendBatch("s", IntBatch(0, 4)).ok());
  }
  {
    // A crash mid-write leaves a partial final line with no newline.
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "T|s|5|4";
  }
  uint64_t replayed = 0;
  auto report = ReplayIngestLog(
      path, [&](const std::string&, const Schema&, uint64_t,
                const Row&) -> Status {
        ++replayed;
        return Status::OK();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->torn_tail);
  EXPECT_EQ(report->replayed, 4u);
  EXPECT_EQ(replayed, 4u);

  // Open truncates the torn tail; the next append reuses seq 5 cleanly.
  auto log = IngestLog::Open(path, FsyncPolicy::kNone);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->last_seq("s"), 4u);
  auto seqs = (*log)->AppendBatch("s", IntBatch(4, 1));
  ASSERT_TRUE(seqs.ok());
  EXPECT_EQ(seqs->first, 5u);
}

TEST_F(DurabilityTest, IngestLogMidFileCorruptionIsHardError) {
  const std::string path = Path("corrupt.log");
  {
    auto log = IngestLog::Open(path, FsyncPolicy::kNone);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendBatch("s", IntBatch(0, 3)).ok());
  }
  // Clobber a byte in the middle of the file (not the tail): replay must
  // refuse with a ParseError naming the offset, not silently skip.
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const size_t second_line = contents.find('\n') + 1;
  contents[second_line] = '?';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  auto report = ReplayIngestLog(
      path,
      [](const std::string&, const Schema&, uint64_t, const Row&) -> Status {
        return Status::OK();
      });
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kParseError);
  EXPECT_NE(report.status().message().find("byte"), std::string::npos)
      << report.status().ToString();
}

// Regression: fuzz_ingest_log found a log that IngestLog::Open accepted
// but ReplayIngestLog rejects (a tuple whose arity does not match its
// stream's declared schema). A handle recovered from such a log is a
// durability hole — everything appended through it sits beyond a record
// the next recovery refuses to cross. Open must reject exactly what
// replay rejects. Raw input: tests/fuzz/corpus/ingest_log/
// crash-open-replay-divergence.log.
TEST_F(DurabilityTest, IngestLogOpenRejectsWhatReplayRejects) {
  const std::string path = Path("divergent.log");
  {
    std::ofstream out(path, std::ios::binary);
    out << "S|s1|ab:string\n"     // one declared field
        << "T|s1|1|1|hello\n"     // two values — arity mismatch
        << "T|s1|2|2|\\N\n"
        << "K|s1|1\n";
  }
  auto report = ReplayIngestLog(
      path,
      [](const std::string&, const Schema&, uint64_t, const Row&) -> Status {
        return Status::OK();
      });
  ASSERT_FALSE(report.ok());
  auto log = IngestLog::Open(path, FsyncPolicy::kNone);
  EXPECT_FALSE(log.ok())
      << "Open accepted a log that replay rejects; appends through this "
         "handle would be unreachable after the next crash";
}

// A child appends one-row batches with fsync-always until SIGKILL'd. The
// surviving log must replay a contiguous 1..N prefix — no gaps, no dups —
// for any kill point (at worst a torn final line, which is dropped).
TEST_F(DurabilityTest, IngestLogWriterSurvivesSigkill) {
  const std::string path = Path("killed.log");
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto log = IngestLog::Open(path, FsyncPolicy::kAlways);
    if (!log.ok()) ::_exit(1);
    for (int64_t i = 0;; ++i) {
      if (!(*log)->AppendBatch("s", IntBatch(i, 1)).ok()) ::_exit(2);
    }
  }
  // Let it write for a while (fsync-always, so this is plenty of records).
  ::usleep(60 * 1000);
  KillAndReap(pid);

  std::vector<uint64_t> seqs;
  auto report = ReplayIngestLog(
      path, [&](const std::string& stream, const Schema&, uint64_t seq,
                const Row& row) -> Status {
        EXPECT_EQ(stream, "s");
        EXPECT_EQ(row[0].int_value(), static_cast<int64_t>(seq) - 1);
        seqs.push_back(seq);
        return Status::OK();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->skipped_dup, 0u);
  ASSERT_GT(seqs.size(), 0u) << "child never wrote a complete record";
  for (size_t i = 0; i < seqs.size(); ++i) {
    ASSERT_EQ(seqs[i], i + 1) << "sequence gap after crash";
  }
  // Reopen agrees with replay about where the log ends.
  auto log = IngestLog::Open(path, FsyncPolicy::kNone);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ((*log)->last_seq("s"), seqs.size());
}

// --- Spill chunk decoder hardening ------------------------------------------
//
// Regression cases from the fuzz suite (tests/fuzz/fuzz_chunk.cc). The raw
// reproducer inputs live under tests/fuzz/corpus/chunk/crash-*.bin; these
// rebuild the same pages by hand so the failure mode stays legible.

namespace {

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

constexpr uint32_t kChunkMagic = 0x44434b31;  // "DCK1"

}  // namespace

// A 14-byte page claiming 4G rows must fail the size sanity check, not
// reach validity.resize(rows) and attempt a 4 GB allocation.
// Reproducer: crash-rowcount-overalloc.bin.
TEST(SpillChunkTest, RowCountLargerThanPageRejected) {
  Schema schema({{"v", DataType::kInt64}});
  std::string page;
  AppendU32(kChunkMagic, &page);
  AppendU32(0xFFFFFFFFu, &page);  // rows
  AppendU32(1u, &page);           // cols
  page.push_back(static_cast<char>(DataType::kInt64));
  page.push_back(1);  // has-validity: sized from `rows` before the fix
  auto r = storage::DeserializeChunk(schema, page.data(), page.size());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// rows == 0 leaves vector::data() null, and memcpy's pointer arguments
// are declared nonnull even for a zero count — UBSan aborts on the call.
// Both zero-row shapes (with and without a validity header) must decode.
// Reproducers: crash-zero-rows-memcpy.bin, crash-zero-rows-validity.bin.
TEST(SpillChunkTest, ZeroRowChunkDecodesCleanly) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  std::string page;
  AppendU32(kChunkMagic, &page);
  AppendU32(0u, &page);  // rows
  AppendU32(2u, &page);  // cols
  page.push_back(static_cast<char>(DataType::kInt64));
  page.push_back(1);  // has-validity, zero validity bytes follow
  page.push_back(static_cast<char>(DataType::kDouble));
  page.push_back(0);  // no validity
  auto r = storage::DeserializeChunk(schema, page.data(), page.size());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 0u);

  // And the writer's own zero-row output round-trips.
  std::string out;
  ASSERT_TRUE(storage::SerializeChunk(Table(schema), &out).ok());
  auto rt = storage::DeserializeChunk(schema, out.data(), out.size());
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt->num_rows(), 0u);
}

// --- Basket spilling --------------------------------------------------------

TEST_F(DurabilityTest, SpillEngageAndFaultBackZeroLoss) {
  auto pager = Pager::Open(Path("spill.pages"));
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  BufferPool pool(std::move(*pager), 8);

  Basket b("s", IntSchema(), /*add_arrival_ts=*/false);
  b.SetCapacity(100, 50);
  b.AttachSpill(&pool);
  ASSERT_TRUE(b.spill_attached());

  const size_t kTotal = 300;
  for (size_t off = 0; off < kTotal; off += 50) {
    auto n = b.AppendAligned(IntBatch(static_cast<int64_t>(off), 50), 0);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, 50u);
  }
  // The overflow went to disk: all rows are still visible through size(),
  // but only the hot suffix is resident (that is what producer credit and
  // the gateway valve are based on).
  EXPECT_EQ(b.size(), kTotal);
  EXPECT_GT(b.spilled_rows(), 0u);
  EXPECT_LE(b.resident_rows(), 100u);
  EXPECT_EQ(b.resident_rows() + b.spilled_rows(), kTotal);
  EXPECT_GT(pool.pager().pages_in_use(), 0u);

  // Peek faults everything back in FIFO order — zero loss, order intact.
  Table all = b.Peek();
  ASSERT_EQ(all.num_rows(), kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(all.GetRow(i)[0], Value(static_cast<int64_t>(i))) << "row " << i;
  }
  EXPECT_EQ(b.spilled_rows(), 0u);
  EXPECT_EQ(b.resident_rows(), kTotal);
  const Basket::Stats stats = b.stats();
  EXPECT_GT(stats.spilled, 0u);
  EXPECT_EQ(stats.faulted, stats.spilled);
  // Fault-back returned every spilled page to the pager's free list.
  EXPECT_EQ(pool.pager().pages_in_use(), 0u);

  // TakeAll drains the (now resident) basket completely.
  Table taken = b.TakeAll();
  EXPECT_EQ(taken.num_rows(), kTotal);
  EXPECT_TRUE(b.empty());
}

TEST_F(DurabilityTest, SpillErasePrefixConsumesWholeSegmentsWithoutFault) {
  auto pager = Pager::Open(Path("spill.pages"));
  ASSERT_TRUE(pager.ok());
  BufferPool pool(std::move(*pager), 8);

  Basket b("s", IntSchema(), /*add_arrival_ts=*/false);
  b.SetCapacity(100, 50);
  b.AttachSpill(&pool);

  // 150 resident rows trip the high watermark: one 100-row segment spills
  // (resident drops to the low watermark).
  ASSERT_TRUE(b.AppendAligned(IntBatch(0, 150), 0).ok());
  ASSERT_EQ(b.spilled_rows(), 100u);
  ASSERT_EQ(b.resident_rows(), 50u);

  // Draining exactly the spilled segment frees its pages without ever
  // reading them back.
  ASSERT_TRUE(b.ErasePrefix(100).ok());
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(b.spilled_rows(), 0u);
  EXPECT_EQ(b.stats().faulted, 0u);
  EXPECT_EQ(pool.pager().pages_in_use(), 0u);

  Table rest = b.Peek();
  ASSERT_EQ(rest.num_rows(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(rest.GetRow(i)[0], Value(static_cast<int64_t>(100 + i)));
  }

  // A partial-segment erase rewrites the front segment in place (minus
  // the erased prefix) instead of faulting the whole basket back in — a
  // slow consumer must not cause spill thrash.
  ASSERT_TRUE(b.AppendAligned(IntBatch(150, 100), 0).ok());
  ASSERT_EQ(b.spilled_rows(), 100u);
  ASSERT_TRUE(b.ErasePrefix(50).ok());
  EXPECT_EQ(b.stats().faulted, 0u);
  EXPECT_EQ(b.spilled_rows(), 50u);
  EXPECT_EQ(b.size(), 100u);
  Table tail = b.Peek();  // faults the rewritten segment for reading
  ASSERT_EQ(tail.num_rows(), 100u);
  for (size_t i = 0; i < tail.num_rows(); ++i) {
    EXPECT_EQ(tail.GetRow(i)[0], Value(static_cast<int64_t>(150 + i)));
  }
}

TEST_F(DurabilityTest, SpillGateDisabledKeepsRowsResident) {
  auto pager = Pager::Open(Path("spill.pages"));
  ASSERT_TRUE(pager.ok());
  BufferPool pool(std::move(*pager), 8);

  Basket b("s", IntSchema(), /*add_arrival_ts=*/false);
  b.SetCapacity(100, 50);
  b.AttachSpill(&pool);

  storage::SetSpillEnabled(false);
  ASSERT_TRUE(b.AppendAligned(IntBatch(0, 300), 0).ok());
  EXPECT_EQ(b.spilled_rows(), 0u);
  EXPECT_EQ(b.resident_rows(), 300u);
  EXPECT_EQ(pool.pager().pages_in_use(), 0u);

  // Re-enabling takes effect on the next append (determinism contract:
  // disabled means byte-identical to the no-pool build).
  storage::SetSpillEnabled(true);
  ASSERT_TRUE(b.AppendAligned(IntBatch(300, 1), 0).ok());
  EXPECT_GT(b.spilled_rows(), 0u);
  Table all = b.Peek();
  ASSERT_EQ(all.num_rows(), 301u);
  for (size_t i = 0; i < all.num_rows(); ++i) {
    EXPECT_EQ(all.GetRow(i)[0], Value(static_cast<int64_t>(i)));
  }
}

// --- Durable emitter staging ------------------------------------------------

TEST_F(DurabilityTest, EmitterStagedBatchSurvivesRestart) {
  const std::string path = Path("staging.log");
  Schema schema = IntSchema();
  auto in = std::make_shared<Basket>("out", schema, /*add_arrival_ts=*/false);

  bool sink_ok = false;
  uint64_t delivered = 0;
  auto sink = [&](const Table& batch) -> Status {
    if (!sink_ok) return Status::IOError("subscriber away");
    delivered += batch.num_rows();
    return Status::OK();
  };

  {
    auto log = IngestLog::Open(path, FsyncPolicy::kAlways);
    ASSERT_TRUE(log.ok());
    core::Emitter e("e", sink);
    e.AddInput(in);
    e.EnableDurableStaging(log->get(), "out");
    ASSERT_TRUE(in->AppendAligned(IntBatch(0, 4), 0).ok());

    // Sink down: the batch is staged in memory AND appended to the log.
    auto fired = e.Fire(0);
    ASSERT_FALSE(fired.ok());
    EXPECT_EQ(e.tuples_pending(), 4u);
    EXPECT_EQ((*log)->last_seq("out"), 4u);
    EXPECT_EQ((*log)->acked("out"), 0u);
    // Crash here: emitter and log handle die with the batch still staged.
  }

  // Restart: replay re-delivers the staged tuples (nothing was acked).
  std::vector<int64_t> replayed;
  auto report = ReplayIngestLog(
      path, [&](const std::string& stream, const Schema&, uint64_t,
                const Row& row) -> Status {
        EXPECT_EQ(stream, "out");
        replayed.push_back(row[0].int_value());
        return Status::OK();
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->replayed, 4u);
  EXPECT_EQ(replayed, (std::vector<int64_t>{0, 1, 2, 3}));

  // Second life without a crash: failed once, then the retry succeeds and
  // acks the log, so a subsequent replay is empty.
  {
    auto log = IngestLog::Open(path, FsyncPolicy::kAlways);
    ASSERT_TRUE(log.ok());
    core::Emitter e("e", sink);
    e.AddInput(in);
    e.EnableDurableStaging(log->get(), "out");
    ASSERT_TRUE(in->AppendAligned(IntBatch(100, 2), 0).ok());
    sink_ok = false;
    ASSERT_FALSE(e.Fire(0).ok());
    sink_ok = true;
    auto fired = e.Fire(0);
    ASSERT_TRUE(fired.ok()) << fired.status().ToString();
    EXPECT_EQ(e.tuples_pending(), 0u);
    EXPECT_EQ(delivered, 2u);
    EXPECT_EQ((*log)->acked("out"), (*log)->last_seq("out"));
    // The retry path must keep the staged slot's schema (the old
    // `pending_ = Table()` reset dropped it); a second cycle through
    // stage-and-retry still works.
    ASSERT_TRUE(in->AppendAligned(IntBatch(200, 3), 0).ok());
    sink_ok = false;
    ASSERT_FALSE(e.Fire(0).ok());
    sink_ok = true;
    ASSERT_TRUE(e.Fire(0).ok());
    EXPECT_EQ(delivered, 5u);
    EXPECT_EQ((*log)->acked("out"), (*log)->last_seq("out"));
  }
  uint64_t leftover = 0;
  auto clean = ReplayIngestLog(
      path, [&](const std::string&, const Schema&, uint64_t,
                const Row&) -> Status {
        ++leftover;
        return Status::OK();
      });
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(leftover, 0u);
}

// --- Engine recovery facade -------------------------------------------------

TEST_F(DurabilityTest, EngineRecoverAndReplay) {
  const std::string cat_dir = Path("catalog");
  const std::string log_path = Path("ingest.log");
  {
    Catalog cat;
    auto t = cat.CreateTable("persisted", IntSchema());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE((*t)->AppendRow({Value(7)}).ok());
    ASSERT_TRUE(storage::SaveCatalog(cat, cat_dir).ok());
    auto log = IngestLog::Open(log_path, FsyncPolicy::kNone);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendBatch("s", IntBatch(0, 6)).ok());
    ASSERT_TRUE((*log)->Ack("s", 2).ok());
  }
  SimulatedClock clock;
  core::Engine engine(&clock);
  ASSERT_TRUE(engine.RecoverCatalog(cat_dir).ok());
  EXPECT_TRUE(engine.catalog().HasTable("persisted"));
  // A missing directory is a fresh start, not an error.
  EXPECT_TRUE(engine.RecoverCatalog(Path("no-such-dir")).ok());

  auto basket =
      engine.CreateBasket("s", IntSchema(), /*add_arrival_ts=*/false);
  ASSERT_TRUE(basket.ok());
  auto report = engine.ReplayIngest(log_path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->replayed, 4u);
  EXPECT_EQ(report->skipped_acked, 2u);
  EXPECT_EQ((*basket)->size(), 4u);
  Table rows = (*basket)->Peek();
  for (size_t i = 0; i < rows.num_rows(); ++i) {
    EXPECT_EQ(rows.GetRow(i)[0], Value(static_cast<int64_t>(2 + i)));
  }
  // A missing log is an empty replay.
  auto empty = engine.ReplayIngest(Path("no-such.log"));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->replayed, 0u);
}

// --- End-to-end server kill-and-recover -------------------------------------

uint16_t FreePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WaitForListen(uint16_t port, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    int fd = ConnectTo(port);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    ::usleep(20 * 1000);
  }
  return false;
}

// `SEQ` scrape: ask the gateway for the log's highest accepted sequence.
int64_t ScrapeSeq(uint16_t port) {
  int fd = ConnectTo(port);
  if (fd < 0) return -1;
  const char* req = "SEQ\n";
  if (::write(fd, req, 4) != 4) {
    ::close(fd);
    return -1;
  }
  std::string reply;
  char c;
  while (::read(fd, &c, 1) == 1 && c != '\n') reply.push_back(c);
  ::close(fd);
  if (reply.rfind("SEQ ", 0) != 0) return -1;
  return std::atoll(reply.c_str() + 4);
}

pid_t SpawnServer(const std::string& bin, uint16_t port,
                  uint16_t actuator_port, const std::string& log_path) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  ::setenv("DATACELL_LOG", log_path.c_str(), 1);
  ::setenv("DATACELL_FSYNC", "always", 1);
  int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::close(devnull);
  }
  const std::string port_s = std::to_string(port);
  const std::string act_s = std::to_string(actuator_port);
  ::execl(bin.c_str(), bin.c_str(), port_s.c_str(), "127.0.0.1", act_s.c_str(),
          "1", "1", static_cast<char*>(nullptr));
  ::_exit(127);
}

// SIGKILL a datacell_server mid-ingest, restart it on the same ingest log,
// and verify (a) the log replays a contiguous prefix, (b) the reconnecting
// client can query its resume point via SEQ, and (c) the restarted server
// delivers every logged tuple plus the new ones downstream, then acks the
// whole log on clean shutdown.
TEST_F(DurabilityTest, ServerKillAndRecover) {
#ifndef DATACELL_SERVER_BIN
  GTEST_SKIP() << "datacell_server binary location not configured";
#else
  const std::string bin = DATACELL_SERVER_BIN;
  if (!fs::exists(bin)) {
    GTEST_SKIP() << "datacell_server not built: " << bin;
  }
  const std::string log_path = Path("server.log");
  SystemClock* clock = SystemClock::Get();

  // --- Run 1: ingest under pacing, then SIGKILL mid-stream. ---
  uint64_t logged_before_kill = 0;
  {
    net::Actuator actuator(clock);
    ASSERT_TRUE(actuator.Start(0).ok());
    const uint16_t port = FreePort();
    ASSERT_NE(port, 0);
    pid_t pid = SpawnServer(bin, port, actuator.port(), log_path);
    ASSERT_GE(pid, 0);
    ASSERT_TRUE(WaitForListen(port, 10000)) << "server never listened";

    std::thread sensor([&] {
      net::Sensor::Options opt;
      opt.num_tuples = 1'000'000;  // far more than we let it send
      opt.tuples_per_write = 8;
      opt.write_interval = 500;
      // The server dies under it; the resulting socket error is the point.
      // The error is the expected outcome here, hence the explicit drop.
      net::Sensor::Run("127.0.0.1", port, opt, clock).IgnoreError();
    });

    // Wait until the (fsync-always) log holds a healthy number of records,
    // then kill the server wherever it happens to be.
    for (int waited = 0; waited < 15000; waited += 20) {
      std::error_code ec;
      if (fs::exists(log_path, ec) && fs::file_size(log_path, ec) > 4096) {
        break;
      }
      ::usleep(20 * 1000);
    }
    KillAndReap(pid);
    sensor.join();
    actuator.WaitFinished();  // server death closes the egress socket

    std::vector<uint64_t> seqs;
    auto report = ReplayIngestLog(
        log_path, [&](const std::string& stream, const Schema&, uint64_t seq,
                      const Row&) -> Status {
          EXPECT_EQ(stream, "b0");
          seqs.push_back(seq);
          return Status::OK();
        });
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_GT(seqs.size(), 0u) << "kill landed before any tuple was logged";
    for (size_t i = 0; i < seqs.size(); ++i) {
      ASSERT_EQ(seqs[i], i + 1) << "crash left a sequence gap";
    }
    logged_before_kill = seqs.size();
  }

  // --- Run 2: restart on the same log, replay, finish a short session. ---
  {
    net::Actuator actuator(clock);
    ASSERT_TRUE(actuator.Start(0).ok());
    const uint16_t port = FreePort();
    ASSERT_NE(port, 0);
    pid_t pid = SpawnServer(bin, port, actuator.port(), log_path);
    ASSERT_GE(pid, 0);
    ASSERT_TRUE(WaitForListen(port, 10000)) << "restart never listened";

    // The gateway tells a reconnecting sensor where the log stands.
    EXPECT_EQ(ScrapeSeq(port), static_cast<int64_t>(logged_before_kill));

    const uint64_t kNewTuples = 100;
    net::Sensor::Options opt;
    opt.num_tuples = kNewTuples;
    Status sent = net::Sensor::Run("127.0.0.1", port, opt, clock);
    ASSERT_TRUE(sent.ok()) << sent.ToString();

    // The server drains and exits once the sensor disconnects.
    int status = 0;
    pid_t reaped = 0;
    for (int waited = 0; waited < 60000; waited += 50) {
      reaped = ::waitpid(pid, &status, WNOHANG);
      if (reaped == pid) break;
      ::usleep(50 * 1000);
    }
    if (reaped != pid) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      FAIL() << "restarted server never drained and exited";
    }
    ASSERT_TRUE(WIFEXITED(status)) << "server crashed on restart";
    ASSERT_EQ(WEXITSTATUS(status), 0);

    actuator.WaitFinished();
    // Exactly once past the last ack: every tuple the crashed run logged
    // is re-delivered, every new tuple delivered, nothing else.
    EXPECT_EQ(actuator.stats().tuples, logged_before_kill + kNewTuples);

    // Clean shutdown acked the whole log: a third start replays nothing.
    auto log = IngestLog::Open(log_path, FsyncPolicy::kNone);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->last_seq("b0"), logged_before_kill + kNewTuples);
    EXPECT_EQ((*log)->acked("b0"), (*log)->last_seq("b0"));
    uint64_t replayed = 0;
    auto report = ReplayIngestLog(
        log_path, [&](const std::string&, const Schema&, uint64_t,
                      const Row&) -> Status {
          ++replayed;
          return Status::OK();
        });
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(replayed, 0u);
  }
#endif
}

}  // namespace
}  // namespace datacell
