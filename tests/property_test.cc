// Property-based tests: randomized invariants that must hold for any
// input, checked against brute-force oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/basket.h"
#include "core/basket_expression.h"
#include "core/scheduler.h"
#include "core/strategy.h"
#include "net/codec.h"
#include "ops/aggregate.h"
#include "ops/join.h"
#include "ops/select.h"
#include "ops/sort.h"
#include "sql/session.h"
#include "util/clock.h"
#include "util/random.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table RandomStream(Random* rng, size_t n, int64_t payload_range = 100) {
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    t.column(0).AppendInt(static_cast<int64_t>(i));
    t.column(1).AppendInt(
        static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(payload_range))));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Basket conservation: appended == consumed + still-stored + dropped.
// ---------------------------------------------------------------------------

class BasketConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(BasketConservationTest, TupleAccounting) {
  Random rng(static_cast<uint64_t>(GetParam()));
  core::Basket basket("b", StreamSchema());
  basket.AddConstraint(
      Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(80)));
  for (int step = 0; step < 50; ++step) {
    const int action = static_cast<int>(rng.Uniform(5));
    switch (action) {
      case 0:
      case 1: {  // append
        Table batch = RandomStream(&rng, rng.Uniform(20));
        ASSERT_TRUE(basket.Append(batch, step).ok());
        break;
      }
      case 2: {  // take some rows
        const size_t size = basket.size();
        if (size == 0) break;
        SelVector sel;
        for (uint32_t i = 0; i < size; ++i) {
          if (rng.Bernoulli(0.3)) sel.push_back(i);
        }
        ASSERT_TRUE(basket.TakeRows(sel).ok());
        break;
      }
      case 3:  // take everything
        basket.TakeAll();
        break;
      case 4: {  // toggle flow control
        if (basket.enabled()) {
          basket.Disable();
        } else {
          basket.Enable();
        }
        break;
      }
    }
    const core::Basket::Stats stats = basket.stats();
    EXPECT_EQ(stats.appended, stats.consumed + basket.size())
        << "conservation violated at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasketConservationTest,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Basket expression partition: result ∪ remainder == original (kMatched).
// ---------------------------------------------------------------------------

class BasketExprPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(BasketExprPartitionTest, MatchedPlusRemainderIsOriginal) {
  Random rng(1000 + static_cast<uint64_t>(GetParam()));
  auto basket = std::make_shared<core::Basket>("b", StreamSchema());
  Table original = RandomStream(&rng, 200);
  ASSERT_TRUE(basket->Append(original, 0).ok());

  const int64_t lo = static_cast<int64_t>(rng.Uniform(90));
  core::BasketExpression be(basket);
  be.Where(Expr::Bin(
      BinaryOp::kAnd,
      Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(lo)),
      Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(lo + 20))));
  EvalContext ctx;
  auto result = be.Evaluate(ctx);
  ASSERT_TRUE(result.ok());
  Table remainder = basket->Peek();

  // Multiset of payloads must partition the original.
  std::multiset<int64_t> expect, got;
  for (int64_t v : original.column(1).ints()) expect.insert(v);
  ASSERT_TRUE(result->num_columns() >= 2);
  for (int64_t v : result->column(1).ints()) {
    got.insert(v);
    EXPECT_GE(v, lo);
    EXPECT_LT(v, lo + 20);
  }
  for (int64_t v : remainder.column(1).ints()) {
    got.insert(v);
    EXPECT_FALSE(v >= lo && v < lo + 20) << "unmatched tuple was kept back";
  }
  EXPECT_EQ(expect, got);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BasketExprPartitionTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Strategy equivalence: all §4.2 strategies produce identical per-query
// result multisets for disjoint range queries.
// ---------------------------------------------------------------------------

class StrategyEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyEquivalenceTest, AllStrategiesAgree) {
  const uint64_t seed = 2000 + static_cast<uint64_t>(GetParam());
  // Disjoint deciles of [0, 100).
  std::vector<core::ContinuousQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(
        {"q" + std::to_string(i),
         Expr::Bin(BinaryOp::kAnd,
                   Expr::Bin(BinaryOp::kGe, Expr::Col("payload"),
                             Expr::Lit(i * 20)),
                   Expr::Bin(BinaryOp::kLt, Expr::Col("payload"),
                             Expr::Lit((i + 1) * 20)))});
  }
  const size_t batch = 50;

  auto run = [&](int strategy) -> std::vector<std::multiset<int64_t>> {
    SimulatedClock clock;
    Result<core::QueryNetwork> net = Status::OK();
    switch (strategy) {
      case 0:
        net = core::BuildSeparateBaskets(StreamSchema(), queries, batch);
        break;
      case 1:
        net = core::BuildSharedBaskets(StreamSchema(), queries, batch);
        break;
      default:
        net = core::BuildPartialDeleteChain(StreamSchema(), queries, batch);
        break;
    }
    EXPECT_TRUE(net.ok());
    core::Scheduler sched(&clock);
    net->RegisterAll(&sched);
    Random rng(seed);
    for (int round = 0; round < 4; ++round) {
      Table tuples = RandomStream(&rng, batch);
      EXPECT_TRUE(net->receptor->Deliver(tuples, clock.Now()).ok());
      EXPECT_TRUE(sched.RunUntilQuiescent().ok());
    }
    std::vector<std::multiset<int64_t>> out;
    for (const core::BasketPtr& b : net->outputs) {
      std::multiset<int64_t> s;
      Table t = b->Peek();
      auto col = t.GetColumn("payload");
      EXPECT_TRUE(col.ok());
      for (int64_t v : (*col)->ints()) s.insert(v);
      out.push_back(std::move(s));
    }
    return out;
  };

  auto separate = run(0);
  auto shared = run(1);
  auto partial = run(2);
  ASSERT_EQ(separate.size(), 5u);
  for (size_t q = 0; q < 5; ++q) {
    EXPECT_EQ(separate[q], shared[q]) << "shared differs on query " << q;
    EXPECT_EQ(separate[q], partial[q]) << "partial differs on query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyEquivalenceTest,
                         ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Join: hash join equals nested-loop theta join on the same equality.
// ---------------------------------------------------------------------------

class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, HashEqualsNestedLoop) {
  Random rng(3000 + static_cast<uint64_t>(GetParam()));
  Table left(Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}));
  Table right(Schema({{"k2", DataType::kInt64}, {"w", DataType::kInt64}}));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(left.AppendRow({Value(static_cast<int64_t>(rng.Uniform(10))),
                                Value(i)})
                    .ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(right.AppendRow({Value(static_cast<int64_t>(rng.Uniform(10))),
                                 Value(i)})
                    .ok());
  }
  auto hashed = ops::HashJoinIndices(left, right, {{"k", "k2"}});
  ASSERT_TRUE(hashed.ok());
  EvalContext ctx;
  auto looped = ops::NestedLoopJoin(
      left, right, *Expr::Bin(BinaryOp::kEq, Expr::Col("k"), Expr::Col("k2")),
      ctx);
  ASSERT_TRUE(looped.ok());
  // Compare as multisets of (left row, right row) pairs.
  auto pairs = [](const ops::JoinMatches& m) {
    std::multiset<std::pair<uint32_t, uint32_t>> out;
    for (size_t i = 0; i < m.left.size(); ++i) {
      out.emplace(m.left[i], m.right[i]);
    }
    return out;
  };
  EXPECT_EQ(pairs(*hashed), pairs(*looped));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Aggregation vs brute force.
// ---------------------------------------------------------------------------

class AggregateOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregateOracleTest, GroupSumsMatchBruteForce) {
  Random rng(4000 + static_cast<uint64_t>(GetParam()));
  Table t(Schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}}));
  std::map<int64_t, std::pair<int64_t, int64_t>> oracle;  // g -> (sum, count)
  const size_t n = 50 + rng.Uniform(200);
  for (size_t i = 0; i < n; ++i) {
    const int64_t g = static_cast<int64_t>(rng.Uniform(7));
    const int64_t v = rng.UniformRange(-50, 50);
    ASSERT_TRUE(t.AppendRow({Value(g), Value(v)}).ok());
    oracle[g].first += v;
    oracle[g].second += 1;
  }
  EvalContext ctx;
  auto out = ops::Aggregate(
      t, {{Expr::Col("g"), "g"}},
      {{ops::AggFunc::kSum, Expr::Col("v"), "s"},
       {ops::AggFunc::kCountStar, nullptr, "n"}},
      ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), oracle.size());
  for (size_t r = 0; r < out->num_rows(); ++r) {
    const int64_t g = out->column(0).ints()[r];
    ASSERT_TRUE(oracle.count(g) > 0);
    EXPECT_EQ(out->column(1).ints()[r], oracle[g].first);
    EXPECT_EQ(out->column(2).ints()[r], oracle[g].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateOracleTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Sort: permutation + ordered.
// ---------------------------------------------------------------------------

class SortPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SortPropertyTest, SortedPermutation) {
  Random rng(5000 + static_cast<uint64_t>(GetParam()));
  Table t = RandomStream(&rng, 100 + rng.Uniform(100));
  EvalContext ctx;
  const bool asc = (GetParam() % 2) == 0;
  auto sorted = ops::SortTable(t, {{Expr::Col("payload"), asc}}, ctx);
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->num_rows(), t.num_rows());
  // Ordered.
  const auto& v = sorted->column(1).ints();
  for (size_t i = 1; i < v.size(); ++i) {
    if (asc) {
      EXPECT_LE(v[i - 1], v[i]);
    } else {
      EXPECT_GE(v[i - 1], v[i]);
    }
  }
  // Permutation.
  std::multiset<int64_t> a(t.column(1).ints().begin(),
                           t.column(1).ints().end());
  std::multiset<int64_t> b(v.begin(), v.end());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortPropertyTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Codec round trip with hostile strings and nulls.
// ---------------------------------------------------------------------------

class CodecRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecRoundTripTest, ArbitraryRowsSurvive) {
  Random rng(6000 + static_cast<uint64_t>(GetParam()));
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"b", DataType::kBool},
                 {"s", DataType::kString}});
  net::Codec codec(schema);
  Table t(schema);
  const char alphabet[] = "ab|\\\nc'xyz0;, ";
  for (int r = 0; r < 50; ++r) {
    Row row;
    row.push_back(rng.Bernoulli(0.1) ? Value::Null()
                                     : Value(rng.UniformRange(-1000000, 1000000)));
    row.push_back(rng.Bernoulli(0.1)
                      ? Value::Null()
                      : Value(rng.NextDouble() * 1e6 - 5e5));
    row.push_back(rng.Bernoulli(0.1) ? Value::Null() : Value(rng.Bernoulli(0.5)));
    if (rng.Bernoulli(0.1)) {
      row.push_back(Value::Null());
    } else {
      std::string s;
      const size_t len = rng.Uniform(12);
      for (size_t c = 0; c < len; ++c) {
        s.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
      }
      row.push_back(Value(std::move(s)));
    }
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    auto line = codec.EncodeRow(t, r);
    ASSERT_TRUE(line.ok());
    ASSERT_EQ(line->find('\n'), std::string::npos);
    auto row = codec.DecodeRow(*line);
    ASSERT_TRUE(row.ok()) << *line;
    Row expect = t.GetRow(r);
    ASSERT_EQ(row->size(), expect.size());
    for (size_t c = 0; c < expect.size(); ++c) {
      if (c == 1 && !expect[c].is_null()) {
        // Doubles round-trip through %.17g exactly.
        EXPECT_EQ((*row)[c].double_value(), expect[c].double_value());
      } else {
        EXPECT_EQ((*row)[c], expect[c]) << "row " << r << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// SQL vs direct operators.
// ---------------------------------------------------------------------------

class SqlOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlOracleTest, RangeQueryMatchesKernelScan) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  sql::Session session(&engine);
  ASSERT_TRUE(session.Execute("create table t (payload int)").ok());

  Random rng(7000 + static_cast<uint64_t>(GetParam()));
  Table reference(Schema({{"payload", DataType::kInt64}}));
  std::string insert = "insert into t values ";
  const size_t n = 100;
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Uniform(1000));
    ASSERT_TRUE(reference.AppendRow({Value(v)}).ok());
    if (i) insert += ", ";
    insert += "(" + std::to_string(v) + ")";
  }
  ASSERT_TRUE(session.Execute(insert).ok());

  const int64_t lo = static_cast<int64_t>(rng.Uniform(900));
  const int64_t hi = lo + 50;
  auto via_sql = session.Execute(
      "select payload from t where payload >= " + std::to_string(lo) +
      " and payload < " + std::to_string(hi));
  ASSERT_TRUE(via_sql.ok());
  auto via_ops =
      ops::SelectRange(reference, "payload", Value(lo), true, Value(hi), false);
  ASSERT_TRUE(via_ops.ok());
  EXPECT_EQ(via_sql->num_rows(), via_ops->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlOracleTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Table erase/keep partition with mixed types and nulls.
// ---------------------------------------------------------------------------

class TablePartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(TablePartitionTest, EraseKeepComplement) {
  Random rng(8000 + static_cast<uint64_t>(GetParam()));
  Table t(Schema({{"i", DataType::kInt64}, {"s", DataType::kString}}));
  const size_t n = 40 + rng.Uniform(60);
  for (size_t r = 0; r < n; ++r) {
    Row row;
    row.push_back(rng.Bernoulli(0.15) ? Value::Null()
                                      : Value(static_cast<int64_t>(r)));
    row.push_back(Value("s" + std::to_string(r)));
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  SelVector erase, keep;
  for (uint32_t r = 0; r < n; ++r) {
    (rng.Bernoulli(0.4) ? erase : keep).push_back(r);
  }
  Table erased = t;
  ASSERT_TRUE(erased.EraseRows(erase).ok());
  Table kept = t;
  ASSERT_TRUE(kept.KeepRows(keep).ok());
  ASSERT_EQ(erased.num_rows(), kept.num_rows());
  for (size_t r = 0; r < erased.num_rows(); ++r) {
    EXPECT_EQ(erased.GetRow(r), kept.GetRow(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TablePartitionTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Codec null-ambiguity round trip: the identity must hold even for strings
// built from the protocol's own spellings — "NULL", "\N", escapes — which
// the generic alphabet above can never produce.
// ---------------------------------------------------------------------------

class CodecNullAmbiguityTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecNullAmbiguityTest, AnyRowSurvivesTheWire) {
  Random rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  Schema schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"b", DataType::kBool},
                 {"s", DataType::kString}});
  net::Codec codec(schema);
  const std::vector<std::string> tokens = {
      "NULL", "\\N", "N", "|", "\\", "\n", "\\p", "a", "xyz", ":", ""};
  for (int iter = 0; iter < 200; ++iter) {
    Row row;
    row.push_back(rng.Bernoulli(0.15)
                      ? Value::Null()
                      : Value(rng.UniformRange(-1'000'000, 1'000'000)));
    row.push_back(rng.Bernoulli(0.15) ? Value::Null()
                                      : Value(rng.NextDouble() * 1e6 - 5e5));
    row.push_back(rng.Bernoulli(0.15) ? Value::Null()
                                      : Value(rng.Bernoulli(0.5)));
    if (rng.Bernoulli(0.15)) {
      row.push_back(Value::Null());
    } else {
      std::string s;
      const size_t pieces = rng.Uniform(5);
      for (size_t p = 0; p < pieces; ++p) s += tokens[rng.Uniform(tokens.size())];
      row.push_back(Value(s));
    }
    Table t(schema);
    ASSERT_TRUE(t.AppendRow(row).ok());
    auto line = codec.EncodeRow(t, 0);
    ASSERT_TRUE(line.ok());
    ASSERT_EQ(line->find('\n'), std::string::npos);
    auto decoded = codec.DecodeRow(*line);
    ASSERT_TRUE(decoded.ok()) << *line;
    EXPECT_EQ(*decoded, row) << *line;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecNullAmbiguityTest, ::testing::Range(1, 9));

// Schema headers round-trip for any field name (escaped like values).
class SchemaHeaderRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemaHeaderRoundTripTest, AnyFieldNameSurvivesTheHandshake) {
  Random rng(static_cast<uint64_t>(GetParam()) * 131 + 17);
  const std::string alphabet = "ab|\\:npq";
  for (int iter = 0; iter < 100; ++iter) {
    Schema schema;
    const size_t nfields = 1 + rng.Uniform(4);
    for (size_t f = 0; f < nfields; ++f) {
      std::string name;
      const size_t len = 1 + rng.Uniform(6);
      for (size_t c = 0; c < len; ++c) {
        name.push_back(alphabet[rng.Uniform(alphabet.size())]);
      }
      name += std::to_string(f);  // keep names unique
      ASSERT_TRUE(schema.AddField({name, DataType::kInt64}).ok());
    }
    net::Codec codec(schema);
    auto decoded = net::Codec::DecodeSchemaHeader(codec.EncodeSchemaHeader());
    ASSERT_TRUE(decoded.ok()) << codec.EncodeSchemaHeader();
    EXPECT_EQ(*decoded, schema);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaHeaderRoundTripTest,
                         ::testing::Range(1, 5));

}  // namespace
}  // namespace datacell
