#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "storage/persist.h"

namespace datacell::storage {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datacell_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  Table SampleTable() {
    Table t(Schema({{"id", DataType::kInt64},
                    {"name", DataType::kString},
                    {"score", DataType::kDouble},
                    {"active", DataType::kBool}}));
    EXPECT_TRUE(
        t.AppendRow({Value(1), Value("ann|e"), Value(0.5), Value(true)}).ok());
    EXPECT_TRUE(
        t.AppendRow({Value(2), Value::Null(), Value(-3.25), Value(false)})
            .ok());
    EXPECT_TRUE(
        t.AppendRow({Value(3), Value("line\nbreak"), Value(1e-9), Value(true)})
            .ok());
    return t;
  }

  fs::path dir_;
};

TEST_F(StorageTest, TableRoundTrip) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "t.dct").string();
  Table original = SampleTable();
  ASSERT_TRUE(SaveTable(original, path).ok());
  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->schema(), original.schema());
  ASSERT_EQ(loaded->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(loaded->GetRow(r), original.GetRow(r)) << "row " << r;
  }
}

TEST_F(StorageTest, EmptyTableRoundTrip) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "empty.dct").string();
  Table original(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(SaveTable(original, path).ok());
  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 0u);
  EXPECT_EQ(loaded->schema(), original.schema());
}

TEST_F(StorageTest, LoadMissingFileFails) {
  auto r = LoadTable((dir_ / "nope.dct").string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(StorageTest, LoadCorruptFileFails) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "bad.dct").string();
  {
    std::ofstream out(path);
    out << "x:int\n1\nnot_an_int\n";
  }
  auto r = LoadTable(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST_F(StorageTest, LoadTruncatedMidHeaderFails) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "torn.dct").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "x:int";  // crash before the header newline reached disk
  }
  auto r = LoadTable(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("truncated mid-header"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(StorageTest, LoadTruncatedMidTupleFails) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "torn.dct").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "x:int\n1\n2";  // final tuple line lost its newline
  }
  auto r = LoadTable(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("truncated mid-tuple at byte 8"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(StorageTest, EmptyStringRowRoundTrips) {
  // A single-string-column row holding "" encodes as an empty line; the
  // loader must decode it as a row, not skip it as blank.
  fs::create_directories(dir_);
  const std::string path = (dir_ / "empty_str.dct").string();
  Table original(Schema({{"s", DataType::kString}}));
  ASSERT_TRUE(original.AppendRow({Value("")}).ok());
  ASSERT_TRUE(original.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(original.AppendRow({Value("")}).ok());
  ASSERT_TRUE(SaveTable(original, path).ok());
  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 3u);
  EXPECT_EQ(loaded->GetRow(0)[0], Value(""));
  EXPECT_EQ(loaded->GetRow(1)[0], Value("x"));
  EXPECT_EQ(loaded->GetRow(2)[0], Value(""));
}

TEST_F(StorageTest, CatalogRoundTrip) {
  Catalog original;
  {
    auto t1 = original.CreateTable("alpha", SampleTable().schema());
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE((*t1)->AppendTable(SampleTable()).ok());
    auto t2 = original.CreateTable("beta", Schema({{"v", DataType::kInt64}}));
    ASSERT_TRUE(t2.ok());
    ASSERT_TRUE((*t2)->AppendRow({Value(42)}).ok());
  }
  ASSERT_TRUE(SaveCatalog(original, dir_.string()).ok());

  Catalog loaded;
  ASSERT_TRUE(LoadCatalog(&loaded, dir_.string()).ok());
  EXPECT_EQ(loaded.ListTables(), original.ListTables());
  auto alpha = loaded.GetTable("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ((*alpha)->num_rows(), 3u);
  auto beta = loaded.GetTable("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ((*beta)->GetRow(0)[0], Value(42));
}

TEST_F(StorageTest, SaveRemovesStaleFiles) {
  Catalog first;
  ASSERT_TRUE(first.CreateTable("old", Schema({{"x", DataType::kInt64}})).ok());
  ASSERT_TRUE(SaveCatalog(first, dir_.string()).ok());
  Catalog second;
  ASSERT_TRUE(second.CreateTable("fresh", Schema({{"x", DataType::kInt64}})).ok());
  ASSERT_TRUE(SaveCatalog(second, dir_.string()).ok());
  Catalog loaded;
  ASSERT_TRUE(LoadCatalog(&loaded, dir_.string()).ok());
  EXPECT_FALSE(loaded.HasTable("old"));
  EXPECT_TRUE(loaded.HasTable("fresh"));
}

TEST_F(StorageTest, LoadIntoNonEmptyCatalogConflicts) {
  Catalog original;
  ASSERT_TRUE(original.CreateTable("t", Schema({{"x", DataType::kInt64}})).ok());
  ASSERT_TRUE(SaveCatalog(original, dir_.string()).ok());
  Catalog loaded;
  ASSERT_TRUE(loaded.CreateTable("t", Schema({{"y", DataType::kDouble}})).ok());
  auto st = LoadCatalog(&loaded, dir_.string());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(StorageTest, LoadMissingDirectoryFails) {
  Catalog loaded;
  auto st = LoadCatalog(&loaded, (dir_ / "ghost").string());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace datacell::storage
