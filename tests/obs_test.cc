// Observability subsystem (DESIGN.md §10): histogram math, registry
// concurrency, trace-ring wraparound, scheduler instrumentation, the
// metronome catch-up cap, and the dc_* virtual tables through SQL.
//
// The registry and trace log are process-global; every test uses names
// under a test-unique prefix (and Reset()s the trace ring) so tests stay
// independent no matter what order gtest runs them in.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/basket.h"
#include "core/engine.h"
#include "core/factory.h"
#include "core/metronome.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/gateway.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/tables.h"
#include "obs/trace.h"
#include "sql/session.h"
#include "util/clock.h"

namespace datacell {
namespace {

// ---------------------------------------------------------------------------
// Histogram: bucket boundaries and percentile math
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  using obs::Histogram;
  // Bucket 0 holds values < 1; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Every value lands inside [lower, upper) of its bucket.
  for (Micros v : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{1'000'000},
                   int64_t{1} << 40}) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_GE(static_cast<uint64_t>(v), Histogram::BucketLowerBound(i));
    if (i + 1 < Histogram::kBuckets) {
      EXPECT_LT(static_cast<uint64_t>(v), Histogram::BucketUpperBound(i));
    }
  }
  // The top bucket absorbs everything beyond the range.
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 62), Histogram::kBuckets - 1);
}

TEST(HistogramTest, PercentilesClampToObservedMax) {
  obs::Histogram h;
  // 100 identical samples: interpolation inside the [8,16) bucket would
  // report 12, but the clamp pins every percentile to the real max.
  for (int i = 0; i < 100; ++i) h.Record(10);
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 1000u);
  EXPECT_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
  EXPECT_DOUBLE_EQ(s.p99(), 10.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 10.0);
}

TEST(HistogramTest, PercentilesOrderAcrossBuckets) {
  obs::Histogram h;
  // 90 fast samples and 10 slow ones: p50 stays in the fast bucket, p95+
  // land in the slow one.
  for (int i = 0; i < 90; ++i) h.Record(3);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_LE(s.p50(), 4.0);
  EXPECT_GE(s.p95(), 512.0);
  EXPECT_LE(s.p99(), 1000.0);  // clamped to max
  EXPECT_EQ(s.max, 1000);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
}

TEST(HistogramTest, EmptyIsAllZero) {
  obs::Histogram h;
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

// ---------------------------------------------------------------------------
// Registry: stable pointers, concurrency (the TSan target)
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* a = reg.GetCounter("obs_test.stable.c");
  obs::Counter* b = reg.GetCounter("obs_test.stable.c");
  EXPECT_EQ(a, b);
  // The same name may exist in every kind namespace independently.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("obs_test.stable.c")),
            static_cast<void*>(a));
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndRecord) {
  // Hammer get-or-create and the hot-path atomics from several threads;
  // under TSan this is the proof the registry needs no external locking.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  constexpr int kThreads = 4;
  constexpr int kIters = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "obs_test.conc." + std::to_string(i % 8);
        reg.GetCounter(key)->Increment();
        reg.GetHistogram("obs_test.conc.hist")->Record(i % 100);
        if ((i & 63) == 0) (void)reg.Snapshot();
        (void)t;
      }
    });
  }
  for (auto& th : threads) th.join();

  uint64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    total += reg.GetCounter("obs_test.conc." + std::to_string(i))->value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("obs_test.conc.hist")->Snapshot().count,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MetricsRegistryTest, SnapshotSortedAndTyped) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("obs_test.snap.a")->Increment(5);
  reg.GetGauge("obs_test.snap.b")->Set(-7);
  reg.GetHistogram("obs_test.snap.c")->Record(16);
  const std::vector<obs::MetricSnapshot> all = reg.Snapshot();
  ASSERT_GE(all.size(), 3u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].name, all[i].name);  // sorted by name
  }
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const obs::MetricSnapshot& m : all) {
    if (m.name == "obs_test.snap.a") {
      EXPECT_EQ(m.kind, obs::MetricKind::kCounter);
      EXPECT_DOUBLE_EQ(m.value, 5.0);
      saw_counter = true;
    } else if (m.name == "obs_test.snap.b") {
      EXPECT_EQ(m.kind, obs::MetricKind::kGauge);
      EXPECT_DOUBLE_EQ(m.value, -7.0);
      saw_gauge = true;
    } else if (m.name == "obs_test.snap.c") {
      EXPECT_EQ(m.kind, obs::MetricKind::kHistogram);
      EXPECT_EQ(m.count, 1u);
      EXPECT_EQ(m.max, 16);
      saw_hist = true;
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(TraceLogTest, RingWrapsKeepingNewestOldestFirst) {
  obs::TraceLog& log = obs::TraceLog::Global();
  log.Reset(/*capacity=*/8);
  log.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    obs::TraceEvent e;
    e.transition = "t" + std::to_string(i);
    e.rows_in = static_cast<uint64_t>(i);
    log.Record(std::move(e));
  }
  log.set_enabled(false);
  EXPECT_EQ(log.recorded(), 20u);
  const std::vector<obs::TraceEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The newest 8 events survive, oldest-first: seq 12..19.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].rows_in, 12 + i);
  }
  log.Reset();
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(TraceLogTest, DisabledRecordsNothing) {
  obs::TraceLog& log = obs::TraceLog::Global();
  log.Reset(8);
  log.set_enabled(false);
  log.Record(obs::TraceEvent{});
  EXPECT_EQ(log.recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Scheduler instrumentation: firing stats and trace events
// ---------------------------------------------------------------------------

Schema IntSchema() { return Schema({{"a", DataType::kInt64}}); }

Table OneInt(int64_t v) {
  Table t(IntSchema());
  EXPECT_TRUE(t.AppendRow({Value(v)}).ok());
  return t;
}

TEST(SchedulerObsTest, FiringStatsAndTraceEvents) {
  obs::TraceLog& log = obs::TraceLog::Global();
  log.Reset(64);
  log.set_enabled(true);

  SimulatedClock clock;
  auto in = std::make_shared<core::Basket>("obs_in", IntSchema());
  auto out = std::make_shared<core::Basket>("obs_out", in->schema(), false);
  auto f = std::make_shared<core::Factory>(
      "obs_copy", [in, out](core::FactoryContext& ctx) -> Status {
        Table t = in->TakeAll();
        if (t.num_rows() == 0) return Status::OK();
        return out->AppendAligned(t, ctx.now()).status();
      });
  f->AddInput(in);
  f->AddOutput(out);
  core::Scheduler sched(&clock);
  sched.Register(f);

  ASSERT_TRUE(in->Append(OneInt(1), 0).ok());
  ASSERT_TRUE(in->Append(OneInt(2), 0).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  log.set_enabled(false);

  // Per-transition stats picked up the firing.
  bool found = false;
  for (const core::Scheduler::TransitionStats& ts :
       sched.TransitionStatsSnapshot()) {
    if (ts.name != "obs_copy") continue;
    found = true;
    EXPECT_GE(ts.firings, 1u);
    EXPECT_EQ(ts.latency.count, ts.firings);
  }
  EXPECT_TRUE(found);

  // The trace saw the same firing with its token flow.
  uint64_t rows_in = 0, rows_out = 0;
  bool traced = false;
  for (const obs::TraceEvent& e : log.Snapshot()) {
    if (e.transition != "obs_copy") continue;
    traced = true;
    EXPECT_EQ(e.trigger, "obs_in");
    rows_in += e.rows_in;
    rows_out += e.rows_out;
  }
  EXPECT_TRUE(traced);
  EXPECT_EQ(rows_in, 2u);
  EXPECT_EQ(rows_out, 2u);
  log.Reset();
}

// ---------------------------------------------------------------------------
// Metronome: bounded catch-up after a stall
// ---------------------------------------------------------------------------

TEST(MetronomeObsTest, StallCatchUpIsBoundedButComplete) {
  auto out = std::make_shared<core::Basket>(
      "obs_hb", Schema({{"epoch", DataType::kTimestamp}}));
  core::Metronome m("obs_cap", out, /*start=*/0, /*interval=*/100, nullptr,
                    /*max_ticks_per_fire=*/4);

  // Simulate a 1 ms stall: 11 ticks (0..1000) are owed at once.
  const Micros now = 1000;
  ASSERT_TRUE(m.CanFire(now));

  // First installment: exactly the cap, cursor left in the past.
  ASSERT_TRUE(m.Fire(now).ok());
  EXPECT_EQ(out->size(), 4u);
  EXPECT_EQ(m.capped_firings(), 1u);
  EXPECT_TRUE(m.CanFire(now));

  // Second installment.
  ASSERT_TRUE(m.Fire(now).ok());
  EXPECT_EQ(out->size(), 8u);
  EXPECT_EQ(m.capped_firings(), 2u);
  EXPECT_TRUE(m.CanFire(now));

  // Final installment drains the backlog; no epoch was skipped.
  ASSERT_TRUE(m.Fire(now).ok());
  EXPECT_EQ(out->size(), 11u);
  EXPECT_EQ(m.capped_firings(), 2u);
  EXPECT_FALSE(m.CanFire(now));
  EXPECT_EQ(m.next_tick(), 1100);

  // Every owed epoch arrived, in order, stamped with its own tick time.
  const Table t = out->Peek();
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.column(1).ints()[i], static_cast<int64_t>(i) * 100);
  }
}

// ---------------------------------------------------------------------------
// SQL surface: dc_* virtual tables and the runtime toggles
// ---------------------------------------------------------------------------

class ObsSqlTest : public ::testing::Test {
 protected:
  ObsSqlTest() : clock_(0), engine_(&clock_), session_(&engine_) {}
  SimulatedClock clock_;
  core::Engine engine_;
  sql::Session session_;
};

TEST_F(ObsSqlTest, DcMetricsRoundTrip) {
  obs::MetricsRegistry::Global()
      .GetCounter("obs_test.sql.roundtrip")
      ->Increment(7);
  auto r = session_.Execute(
      "select kind, value from dc_metrics where name = "
      "'obs_test.sql.roundtrip'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->GetRow(0)[0], Value("counter"));
  EXPECT_EQ(r->GetRow(0)[1], Value(7.0));
}

TEST_F(ObsSqlTest, DcBasketsReflectsLiveState) {
  ASSERT_TRUE(session_.Execute("create basket s (a int)").ok());
  ASSERT_TRUE(session_.Execute("insert into s values (1), (2), (3)").ok());
  auto r = session_.Execute(
      "select rows, appended from dc_baskets where name = 's'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->GetRow(0)[0], Value(int64_t{3}));
  EXPECT_EQ(r->GetRow(0)[1], Value(int64_t{3}));
}

TEST_F(ObsSqlTest, UserRelationShadowsVirtualTable) {
  // A user table named dc_metrics wins; the virtual table is a fallback.
  ASSERT_TRUE(session_.Execute("create table dc_metrics (a int)").ok());
  ASSERT_TRUE(session_.Execute("insert into dc_metrics values (42)").ok());
  auto r = session_.Execute("select * from dc_metrics");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  ASSERT_EQ(r->num_columns(), 1u);
  EXPECT_EQ(r->GetRow(0)[0], Value(int64_t{42}));
}

TEST_F(ObsSqlTest, SetTogglesTraceAndMetrics) {
  obs::TraceLog& log = obs::TraceLog::Global();
  log.set_enabled(false);
  ASSERT_TRUE(session_.Execute("set dc_trace = 1").ok());
  EXPECT_TRUE(log.enabled());
  ASSERT_TRUE(session_.Execute("set dc_trace = 0").ok());
  EXPECT_FALSE(log.enabled());

  ASSERT_TRUE(obs::MetricsRegistry::enabled());
  ASSERT_TRUE(session_.Execute("set dc_metrics = 0").ok());
  EXPECT_FALSE(obs::MetricsRegistry::enabled());
  ASSERT_TRUE(session_.Execute("set dc_metrics = 1").ok());
  EXPECT_TRUE(obs::MetricsRegistry::enabled());
}

TEST_F(ObsSqlTest, DcTraceAndDcTransitionsSeeContinuousQueries) {
  obs::TraceLog::Global().Reset(64);
  ASSERT_TRUE(session_.Execute("set dc_trace = 1").ok());
  ASSERT_TRUE(session_.Execute("create basket s (a int)").ok());
  ASSERT_TRUE(session_.Execute("create table tgt (a int)").ok());
  ASSERT_TRUE(session_
                  .RegisterContinuousQuery(
                      "obs_cq",
                      "insert into tgt select * from [select * from s] as z")
                  .ok());
  ASSERT_TRUE(session_.Execute("insert into s values (9)").ok());
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  ASSERT_TRUE(session_.Execute("set dc_trace = 0").ok());

  auto fired = session_.Execute(
      "select firings from dc_transitions where name = 'obs_cq'");
  ASSERT_TRUE(fired.ok()) << fired.status().ToString();
  ASSERT_EQ(fired->num_rows(), 1u);
  EXPECT_EQ(fired->GetRow(0)[0], Value(int64_t{1}));

  auto trace = session_.Execute(
      "select rows_in from dc_trace where transition = 'obs_cq'");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace->num_rows(), 1u);
  EXPECT_EQ(trace->GetRow(0)[0], Value(int64_t{1}));
  obs::TraceLog::Global().Reset();
}

// ---------------------------------------------------------------------------
// Gateway STATS command
// ---------------------------------------------------------------------------

TEST(GatewayStatsTest, StatsCommandAnswersOneLineAndCloses) {
  SystemClock* clock = SystemClock::Get();
  auto basket = std::make_shared<core::Basket>("stats_in", IntSchema());
  auto receptor = std::make_shared<core::Receptor>("stats_r");
  receptor->AddOutput(basket);
  net::TcpIngress ingress(receptor, net::Codec(IntSchema()), clock);
  ASSERT_TRUE(ingress.Start().ok());

  auto conn = net::TcpStream::Connect("127.0.0.1", ingress.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("STATS\n").ok());
  auto line = conn->ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->rfind("STATS ", 0), 0u) << *line;
  EXPECT_NE(line->find("tuples_received=0"), std::string::npos) << *line;
  EXPECT_NE(line->find("basket.stats_in.rows=0"), std::string::npos) << *line;
  // The scrape connection is one-shot: the gateway closes it after the
  // reply instead of waiting for tuples.
  auto next = conn->ReadLine();
  EXPECT_FALSE(next.ok());
  // Regression: a scrape must not read as a completed sensor session — a
  // server waiting on finished() would otherwise shut down after the
  // first monitoring probe.
  clock->SleepFor(50'000);
  EXPECT_FALSE(ingress.finished());
  ingress.Stop();
}

}  // namespace
}  // namespace datacell
