// Lexer and parser breadth tests: token-level edge cases, precedence, and
// grammar corners beyond what the executor-level suites exercise.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace datacell::sql {
namespace {

Result<std::vector<Token>> Lex(const std::string& s) { return Tokenize(s); }

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("SeLeCt FROM wHeRe");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // + end
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("from"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("where"));
}

TEST(LexerTest, IdentifiersLowerCased) {
  auto tokens = Lex("MyTable my_col2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "mytable");
  EXPECT_EQ((*tokens)[1].text, "my_col2");
}

TEST(LexerTest, NumberForms) {
  auto tokens = Lex("42 3.5 .5 1e3 2.5E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 0.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 0.025);
}

TEST(LexerTest, StringEscaping) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, OperatorsTwoChar) {
  auto tokens = Lex("<> != <= >= < > =");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kEq);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("a -- rest of line\nb /* multi\nline */ c");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[2].text, "c");
}

TEST(LexerTest, LineNumbersTracked) {
  auto tokens = Lex("a\nb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[2].line, 3u);
}

TEST(LexerTest, Unterminated) {
  EXPECT_FALSE(Lex("'open").ok());
  EXPECT_FALSE(Lex("/* open").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
}

TEST(ParserPrecedenceTest, ArithmeticBeforeComparison) {
  auto stmt = ParseOne("select * from t where a + 2 * 3 > b - 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select->where->ToString(), "((a + (2 * 3)) > (b - 1))");
}

TEST(ParserPrecedenceTest, AndBindsTighterThanOr) {
  auto stmt = ParseOne("select * from t where a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select->where->ToString(),
            "((a = 1) or ((b = 2) and (c = 3)))");
}

TEST(ParserPrecedenceTest, NotBindsAboveAnd) {
  auto stmt = ParseOne("select * from t where not a = 1 and b = 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select->where->ToString(),
            "((not (a = 1)) and (b = 2))");
}

TEST(ParserPrecedenceTest, ParenthesesOverride) {
  auto stmt = ParseOne("select (1 + 2) * 3 x");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select->items[0].expr->ToString(), "((1 + 2) * 3)");
}

TEST(ParserPrecedenceTest, UnaryMinusChains) {
  auto stmt = ParseOne("select - -3 x, +4 y");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select->items[0].expr->ToString(), "(-(-3))");
  EXPECT_EQ((*stmt)->select->items[1].expr->ToString(), "4");
}

TEST(ParserGrammarTest, ImplicitAliasWithoutAs) {
  auto stmt = ParseOne("select a total from t u");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->select->items[0].alias, "total");
  EXPECT_EQ((*stmt)->select->from[0].alias, "u");
}

TEST(ParserGrammarTest, QualifiedStar) {
  auto stmt = ParseOne("select a.*, b.x from t1 a, t2 b");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->select->items.size(), 2u);
  EXPECT_TRUE((*stmt)->select->items[0].star);
  EXPECT_EQ((*stmt)->select->items[0].star_qualifier, "a");
  EXPECT_FALSE((*stmt)->select->items[1].star);
}

TEST(ParserGrammarTest, MultiValuesRows) {
  auto stmt = ParseOne("insert into t (a, b) values (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->insert->columns.size(), 2u);
  EXPECT_EQ((*stmt)->insert->values.size(), 2u);
}

TEST(ParserGrammarTest, FunctionCalls) {
  auto stmt = ParseOne("select count(*) a, sum(x + 1) b, least(x, y) c from t");
  ASSERT_TRUE(stmt.ok());
  const auto& items = (*stmt)->select->items;
  EXPECT_EQ(items[0].expr->ToString(), "count(*)");
  EXPECT_EQ(items[1].expr->ToString(), "sum((x + 1))");
  EXPECT_EQ(items[2].expr->ToString(), "least(x, y)");
}

TEST(ParserGrammarTest, NestedWithBlockRejected) {
  EXPECT_FALSE(ParseOne("with a as [select * from x] begin "
                        "with b as [select * from y] begin end end")
                   .ok());
}

TEST(ParserGrammarTest, EmptyInputYieldsNoStatements) {
  auto stmts = Parse("   ;;  -- nothing\n");
  ASSERT_TRUE(stmts.ok());
  EXPECT_TRUE(stmts->empty());
}

TEST(ParserGrammarTest, MultipleStatements) {
  auto stmts = Parse("create table t (a int); insert into t values (1); "
                     "select * from t");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserGrammarTest, ErrorsMentionLine) {
  auto r = Parse("select *\nfrom\nwhere");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace datacell::sql
