// Partition-aware plan instantiation and the cross-partition merge
// transition (DESIGN.md §15): fixed-shard-order determinism, the
// any-partition firing rule, and byte-identity with the unsharded engine.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/basket.h"
#include "core/engine.h"
#include "core/merge.h"
#include "net/codec.h"
#include "sql/plan/partition.h"
#include "util/clock.h"

namespace datacell::sql::plan {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table Rows(const Schema& s, std::vector<int64_t> payloads, int64_t tag_base) {
  Table t(s);
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_TRUE(t.AppendRow({Value(Micros{tag_base + static_cast<int64_t>(i)}),
                             Value(payloads[i])})
                    .ok());
  }
  return t;
}

TEST(PartitionTest, ResolvePartitionsReadsDcShards) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  EXPECT_EQ(ResolvePartitions(&engine), 1u);  // unset

  engine.SetVariable("dc_shards", Value(int64_t{4}));
  EXPECT_EQ(ResolvePartitions(&engine), 4u);

  engine.SetVariable("dc_shards", Value(int64_t{0}));
  EXPECT_EQ(ResolvePartitions(&engine), 1u);  // < 1 clamps

  engine.SetVariable("dc_shards", Value("many"));
  EXPECT_EQ(ResolvePartitions(&engine), 1u);  // non-integer ignored
}

TEST(PartitionTest, BuildPartitionedChainShapesAndCapacitySplit) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  PartitionSpec spec;
  spec.base = "b0";
  spec.partitions = 4;
  spec.capacity = 100;
  auto chain = BuildPartitionedChain(&engine, spec, StreamSchema(), nullptr);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_EQ(chain->inputs.size(), 4u);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(chain->inputs[k]->name(), "b0.s" + std::to_string(k));
    // Total ingress bound preserved: 100 split 4 ways.
    EXPECT_EQ(chain->inputs[k]->capacity(), 25u);
  }
  EXPECT_EQ(chain->outputs, chain->inputs);  // no stage builder
  EXPECT_EQ(chain->merged->name(), "b0.merged");
  ASSERT_NE(chain->merge, nullptr);
  // The baskets are engine-registered (SQL/replay visible).
  EXPECT_TRUE(engine.HasBasket("b0.s0"));
  EXPECT_TRUE(engine.HasBasket("b0.merged"));
}

TEST(PartitionTest, MergeFiresWhenAnyPartitionNonEmpty) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  PartitionSpec spec;
  spec.base = "b0";
  spec.partitions = 3;
  auto chain = BuildPartitionedChain(&engine, spec, StreamSchema(), nullptr);
  ASSERT_TRUE(chain.ok());

  EXPECT_FALSE(chain->merge->CanFire(clock.Now()));  // everything idle

  // Only the middle partition holds data — idle siblings must not dam it
  // (a Factory would refuse to fire here; the merge must not).
  const Schema s = StreamSchema();
  ASSERT_TRUE(chain->inputs[1]->Append(Rows(s, {7, 8}, 100), clock.Now()).ok());
  EXPECT_TRUE(chain->merge->CanFire(clock.Now()));
  auto fired = chain->merge->Fire(clock.Now());
  ASSERT_TRUE(fired.ok());
  EXPECT_TRUE(*fired);
  EXPECT_EQ(chain->merged->size(), 2u);
  EXPECT_EQ(chain->inputs[1]->size(), 0u);
  EXPECT_FALSE(chain->merge->CanFire(clock.Now()));  // drained
}

TEST(PartitionTest, MergeConsumesPartitionsInFixedShardOrder) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  PartitionSpec spec;
  spec.base = "b0";
  spec.partitions = 3;
  auto chain = BuildPartitionedChain(&engine, spec, StreamSchema(), nullptr);
  ASSERT_TRUE(chain.ok());
  const Schema s = StreamSchema();

  // Arrival order into the baskets is deliberately 2, 0, 1 — the merge
  // must still emit shard order 0, 1, 2 within the firing.
  ASSERT_TRUE(chain->inputs[2]->Append(Rows(s, {30, 31}, 0), clock.Now()).ok());
  ASSERT_TRUE(chain->inputs[0]->Append(Rows(s, {10}, 10), clock.Now()).ok());
  ASSERT_TRUE(chain->inputs[1]->Append(Rows(s, {20}, 20), clock.Now()).ok());
  auto fired = chain->merge->Fire(clock.Now());
  ASSERT_TRUE(fired.ok() && *fired);

  Table merged = chain->merged->Peek();
  ASSERT_EQ(merged.num_rows(), 4u);
  const size_t payload_col = 1;
  EXPECT_EQ(merged.GetRow(0)[payload_col], Value(int64_t{10}));
  EXPECT_EQ(merged.GetRow(1)[payload_col], Value(int64_t{20}));
  EXPECT_EQ(merged.GetRow(2)[payload_col], Value(int64_t{30}));
  EXPECT_EQ(merged.GetRow(3)[payload_col], Value(int64_t{31}));
}

// The acceptance bar for sharding: for the same per-partition arrival
// sequences, the merged stream is byte-identical to the unsharded engine
// ingesting those sequences in shard order — verified by wire-encoding
// both results with the same codec. Aggregates are int64 (byte identity
// for doubles would additionally hinge on fold order, which the merge
// does fix, but int64 keeps the check exact end to end).
TEST(PartitionTest, PartitionedMergeByteIdenticalToUnsharded) {
  SimulatedClock clock;
  const Schema s = StreamSchema();

  // Per-partition arrival sequences (two firing rounds each).
  const std::vector<std::vector<int64_t>> round1 = {{1, 2}, {3}, {4, 5, 6}};
  const std::vector<std::vector<int64_t>> round2 = {{7}, {8, 9}, {}};

  // Sharded: three partitions, interleaved appends, merge per round.
  core::Engine sharded(&clock);
  PartitionSpec spec;
  spec.base = "b0";
  spec.partitions = 3;
  auto chain = BuildPartitionedChain(&sharded, spec, s, nullptr);
  ASSERT_TRUE(chain.ok());
  const auto feed = [&](const std::vector<std::vector<int64_t>>& round,
                        int64_t tag_base) {
    // Reactor threads land batches in arbitrary order; simulate the worst
    // case by appending in reverse shard order.
    for (size_t k = round.size(); k-- > 0;) {
      if (round[k].empty()) continue;
      ASSERT_TRUE(chain->inputs[k]
                      ->Append(Rows(s, round[k],
                                    tag_base + static_cast<int64_t>(k) * 10),
                               clock.Now())
                      .ok());
    }
  };
  feed(round1, 0);
  ASSERT_TRUE(chain->merge->Fire(clock.Now()).ok());
  feed(round2, 100);
  ASSERT_TRUE(chain->merge->Fire(clock.Now()).ok());
  Table merged = chain->merged->Peek();

  // Unsharded: one basket, the same sequences appended in shard order
  // round by round (the merge's determinism contract).
  core::Engine unsharded(&clock);
  auto u0 = unsharded.CreateBasket("b0", s, /*add_arrival_ts=*/true);
  ASSERT_TRUE(u0.ok());
  for (const auto* round : {&round1, &round2}) {
    const int64_t tag_base = round == &round1 ? 0 : 100;
    for (size_t k = 0; k < round->size(); ++k) {
      if ((*round)[k].empty()) continue;
      ASSERT_TRUE((*u0)
                      ->Append(Rows(s, (*round)[k],
                                    tag_base + static_cast<int64_t>(k) * 10),
                               clock.Now())
                      .ok());
    }
  }
  Table expected = (*u0)->Peek();

  // Byte identity over the wire encoding (covers every column, including
  // the arrival timestamps the merge must preserve through AppendAligned).
  ASSERT_EQ(merged.num_rows(), expected.num_rows());
  net::Codec codec(merged.schema());
  auto merged_bytes = codec.EncodeTable(merged);
  net::Codec expected_codec(expected.schema());
  auto expected_bytes = expected_codec.EncodeTable(expected);
  ASSERT_TRUE(merged_bytes.ok() && expected_bytes.ok());
  EXPECT_EQ(*merged_bytes, *expected_bytes);

  // And the cross-partition aggregate over the merged place matches.
  int64_t merged_sum = 0;
  int64_t expected_sum = 0;
  for (size_t i = 0; i < merged.num_rows(); ++i) {
    merged_sum += merged.GetRow(i)[1].int_value();
    expected_sum += expected.GetRow(i)[1].int_value();
  }
  EXPECT_EQ(merged_sum, expected_sum);
  EXPECT_EQ(merged_sum, 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9);
}

// Per-partition stage cloning: each partition gets its own instance of the
// stage pipeline, and the merge joins the *stage outputs*.
TEST(PartitionTest, StageBuilderClonedPerPartition) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  const Schema s = StreamSchema();
  PartitionSpec spec;
  spec.base = "b0";
  spec.partitions = 2;
  std::vector<size_t> seen;
  auto chain = BuildPartitionedChain(
      &engine, spec, s,
      [&](size_t k, const core::BasketPtr& in) -> Result<core::BasketPtr> {
        seen.push_back(k);
        // A trivial cloned stage: a distinct per-partition output basket.
        return engine.CreateBasket("q1.s" + std::to_string(k), in->schema(),
                                   /*add_arrival_ts=*/false);
      });
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1}));
  ASSERT_EQ(chain->outputs.size(), 2u);
  EXPECT_EQ(chain->outputs[0]->name(), "q1.s0");
  EXPECT_EQ(chain->outputs[1]->name(), "q1.s1");
  // The merge reads the stage outputs, not the ingress baskets.
  auto inputs = chain->merge->input_places();
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0]->name(), "q1.s0");
  EXPECT_EQ(inputs[1]->name(), "q1.s1");
}

}  // namespace
}  // namespace datacell::sql::plan
