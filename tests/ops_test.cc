#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "ops/aggregate.h"
#include "ops/delete.h"
#include "ops/join.h"
#include "ops/kernels.h"
#include "ops/morsel.h"
#include "ops/project.h"
#include "ops/select.h"
#include "ops/sort.h"
#include "util/random.h"
#include "util/simd.h"

namespace datacell {
namespace {

using ops::AggFunc;
using ops::AggItem;
using ops::GroupItem;
using ops::JoinKey;
using ops::ProjectionItem;
using ops::SortKey;

Table Orders() {
  Table t(Schema({{"id", DataType::kInt64},
                  {"cust", DataType::kString},
                  {"amount", DataType::kDouble}}));
  EXPECT_TRUE(t.AppendRow({Value(1), Value("ann"), Value(10.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(2), Value("bob"), Value(20.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(3), Value("ann"), Value(5.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(4), Value("cat"), Value(40.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(5), Value("bob"), Value(15.0)}).ok());
  return t;
}

TEST(SelectTest, PredicateSelection) {
  Table t = Orders();
  EvalContext ctx;
  auto sel = ops::Select(
      t, *Expr::Bin(BinaryOp::kGe, Expr::Col("amount"), Expr::Lit(15.0)), ctx);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{1, 3, 4}));
}

TEST(SelectTest, RangeScanInclusive) {
  Table t = Orders();
  auto sel = ops::SelectRange(t, "id", Value(2), true, Value(4), true);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{1, 2, 3}));
}

TEST(SelectTest, RangeScanExclusive) {
  Table t = Orders();
  auto sel = ops::SelectRange(t, "id", Value(2), false, Value(4), false);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{2}));
}

TEST(SelectTest, RangeOpenBounds) {
  Table t = Orders();
  auto sel = ops::SelectRange(t, "id", Value::Null(), true, Value(2), true);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{0, 1}));
  sel = ops::SelectRange(t, "id", Value(4), true, Value::Null(), true);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (SelVector{3, 4}));
}

TEST(SelectTest, RangeOnStringsRejected) {
  Table t = Orders();
  EXPECT_FALSE(ops::SelectRange(t, "cust", Value(1), true, Value(2), true).ok());
}

TEST(SelectTest, FilterMaterializes) {
  Table t = Orders();
  EvalContext ctx;
  auto f = ops::Filter(
      t, *Expr::Bin(BinaryOp::kEq, Expr::Col("cust"), Expr::Lit("ann")), ctx);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->num_rows(), 2u);
}

TEST(ProjectTest, SelectStar) {
  Table t = Orders();
  EvalContext ctx;
  auto out = ops::Project(t, ops::ProjectAll(t.schema()), ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 5u);
  EXPECT_EQ(out->schema(), t.schema());
}

TEST(ProjectTest, ComputedColumnAndRename) {
  Table t = Orders();
  EvalContext ctx;
  std::vector<ProjectionItem> items = {
      {Expr::Col("id"), "order_id"},
      {Expr::Bin(BinaryOp::kMul, Expr::Col("amount"), Expr::Lit(2)), "dbl"}};
  auto out = ops::Project(t, items, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(0).name, "order_id");
  EXPECT_DOUBLE_EQ(out->column(1).doubles()[3], 80.0);
}

TEST(ProjectTest, WithSelection) {
  Table t = Orders();
  EvalContext ctx;
  SelVector sel{0, 4};
  auto out = ops::Project(t, ops::ProjectAll(t.schema()), ctx, &sel);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->GetRow(1)[0], Value(5));
}

Table Payments() {
  Table t(Schema({{"order_id", DataType::kInt64},
                  {"method", DataType::kString}}));
  EXPECT_TRUE(t.AppendRow({Value(1), Value("card")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(3), Value("cash")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(3), Value("card")}).ok());
  EXPECT_TRUE(t.AppendRow({Value(9), Value("card")}).ok());
  return t;
}

TEST(JoinTest, HashJoinBasic) {
  Table orders = Orders();
  Table pay = Payments();
  auto m = ops::HashJoinIndices(orders, pay, {{"id", "order_id"}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->left.size(), 3u);  // order 1 once, order 3 twice
  auto joined = ops::MaterializeJoin(orders, pay, *m);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 3u);
  EXPECT_EQ(joined->schema().num_fields(), 5u);
}

TEST(JoinTest, HashJoinNoMatches) {
  Table orders = Orders();
  Table pay(Schema({{"order_id", DataType::kInt64},
                    {"method", DataType::kString}}));
  ASSERT_TRUE(pay.AppendRow({Value(100), Value("card")}).ok());
  auto m = ops::HashJoinIndices(orders, pay, {{"id", "order_id"}});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->left.empty());
}

TEST(JoinTest, NullKeysNeverMatch) {
  Table a(Schema({{"k", DataType::kInt64}}));
  ASSERT_TRUE(a.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(a.AppendRow({Value(1)}).ok());
  Table b(Schema({{"k2", DataType::kInt64}}));
  ASSERT_TRUE(b.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(b.AppendRow({Value(1)}).ok());
  auto m = ops::HashJoinIndices(a, b, {{"k", "k2"}});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->left.size(), 1u);
  EXPECT_EQ(m->left[0], 1u);
  EXPECT_EQ(m->right[0], 1u);
}

TEST(JoinTest, SelfJoin) {
  Table orders = Orders();
  auto m = ops::HashJoinIndices(orders, orders, {{"cust", "cust"}});
  ASSERT_TRUE(m.ok());
  // ann:2 rows -> 4 pairs, bob:2 -> 4, cat:1 -> 1.
  EXPECT_EQ(m->left.size(), 9u);
}

TEST(JoinTest, CompositeKey) {
  Table a(Schema({{"x", DataType::kInt64}, {"y", DataType::kString}}));
  ASSERT_TRUE(a.AppendRow({Value(1), Value("p")}).ok());
  ASSERT_TRUE(a.AppendRow({Value(1), Value("q")}).ok());
  Table b(Schema({{"x2", DataType::kInt64}, {"y2", DataType::kString}}));
  ASSERT_TRUE(b.AppendRow({Value(1), Value("q")}).ok());
  auto m = ops::HashJoinIndices(a, b, {{"x", "x2"}, {"y", "y2"}});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->left.size(), 1u);
  EXPECT_EQ(m->left[0], 1u);
}

TEST(JoinTest, MaterializeRenamesCollisions) {
  Table orders = Orders();
  auto m = ops::HashJoinIndices(orders, orders, {{"id", "id"}});
  ASSERT_TRUE(m.ok());
  auto joined = ops::MaterializeJoin(orders, orders, *m);
  ASSERT_TRUE(joined.ok());
  EXPECT_GE(joined->schema().FindField("r_id"), 0);
  EXPECT_GE(joined->schema().FindField("r_cust"), 0);
}

TEST(JoinTest, ThetaJoinNestedLoop) {
  Table orders = Orders();
  Table pay = Payments();
  EvalContext ctx;
  // id < order_id : theta join.
  ExprPtr pred = Expr::Bin(BinaryOp::kLt, Expr::Col("id"), Expr::Col("order_id"));
  auto m = ops::NestedLoopJoin(orders, pay, *pred, ctx);
  ASSERT_TRUE(m.ok());
  // Count pairs manually: ids {1..5} vs order_ids {1,3,3,9}.
  // id=1: {3,3,9} -> 3; id=2: {3,3,9} -> 3; id=3: {9} -> 1; id=4: {9}; id=5: {9}.
  EXPECT_EQ(m->left.size(), 9u);
}

TEST(JoinTest, HashJoinWithResidual) {
  Table orders = Orders();
  Table pay = Payments();
  EvalContext ctx;
  ExprPtr residual =
      Expr::Bin(BinaryOp::kEq, Expr::Col("method"), Expr::Lit("card"));
  auto joined = ops::HashJoin(orders, pay, {{"id", "order_id"}}, residual, ctx);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 2u);
}

TEST(AggregateTest, GlobalAggregates) {
  Table t = Orders();
  EvalContext ctx;
  std::vector<AggItem> aggs = {
      {AggFunc::kCountStar, nullptr, "n"},
      {AggFunc::kSum, Expr::Col("amount"), "total"},
      {AggFunc::kAvg, Expr::Col("amount"), "mean"},
      {AggFunc::kMin, Expr::Col("amount"), "lo"},
      {AggFunc::kMax, Expr::Col("amount"), "hi"}};
  auto out = ops::Aggregate(t, {}, aggs, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->GetRow(0)[0], Value(int64_t{5}));
  EXPECT_EQ(out->GetRow(0)[1], Value(90.0));
  EXPECT_EQ(out->GetRow(0)[2], Value(18.0));
  EXPECT_EQ(out->GetRow(0)[3], Value(5.0));
  EXPECT_EQ(out->GetRow(0)[4], Value(40.0));
}

TEST(AggregateTest, EmptyInputGlobal) {
  Table t(Schema({{"x", DataType::kInt64}}));
  EvalContext ctx;
  std::vector<AggItem> aggs = {{AggFunc::kCountStar, nullptr, "n"},
                               {AggFunc::kSum, Expr::Col("x"), "s"}};
  auto out = ops::Aggregate(t, {}, aggs, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->GetRow(0)[0], Value(int64_t{0}));
  EXPECT_TRUE(out->GetRow(0)[1].is_null());
}

TEST(AggregateTest, GroupBy) {
  Table t = Orders();
  EvalContext ctx;
  std::vector<GroupItem> groups = {{Expr::Col("cust"), "cust"}};
  std::vector<AggItem> aggs = {{AggFunc::kSum, Expr::Col("amount"), "total"},
                               {AggFunc::kCountStar, nullptr, "n"}};
  auto out = ops::Aggregate(t, groups, aggs, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  // First-seen order: ann, bob, cat.
  EXPECT_EQ(out->GetRow(0)[0], Value("ann"));
  EXPECT_EQ(out->GetRow(0)[1], Value(15.0));
  EXPECT_EQ(out->GetRow(1)[0], Value("bob"));
  EXPECT_EQ(out->GetRow(1)[1], Value(35.0));
  EXPECT_EQ(out->GetRow(2)[2], Value(int64_t{1}));
}

TEST(AggregateTest, CountSkipsNulls) {
  Table t(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  EvalContext ctx;
  std::vector<AggItem> aggs = {{AggFunc::kCount, Expr::Col("x"), "c"},
                               {AggFunc::kCountStar, nullptr, "n"}};
  auto out = ops::Aggregate(t, {}, aggs, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRow(0)[0], Value(int64_t{1}));
  EXPECT_EQ(out->GetRow(0)[1], Value(int64_t{2}));
}

TEST(AggregateTest, IntSumStaysInt) {
  Table t(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(2)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(3)}).ok());
  EvalContext ctx;
  auto out =
      ops::Aggregate(t, {}, {{AggFunc::kSum, Expr::Col("x"), "s"}}, ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(out->GetRow(0)[0], Value(int64_t{5}));
}

TEST(AggregateTest, GroupByExpression) {
  Table t = Orders();
  EvalContext ctx;
  std::vector<GroupItem> groups = {
      {Expr::Bin(BinaryOp::kMod, Expr::Col("id"), Expr::Lit(2)), "parity"}};
  auto out = ops::Aggregate(t, groups,
                            {{AggFunc::kCountStar, nullptr, "n"}}, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
}

TEST(RunningAggregateTest, IncrementalMatchesBatch) {
  ops::RunningAggregate sum(AggFunc::kSum);
  ops::RunningAggregate cnt(AggFunc::kCount);
  ops::RunningAggregate avg(AggFunc::kAvg);
  Column batch1(DataType::kInt64);
  batch1.AppendInt(1);
  batch1.AppendInt(2);
  Column batch2(DataType::kInt64);
  batch2.AppendInt(3);
  batch2.AppendNull();
  for (auto* agg : {&sum, &cnt, &avg}) {
    ASSERT_TRUE(agg->Update(batch1).ok());
    ASSERT_TRUE(agg->Update(batch2).ok());
  }
  EXPECT_EQ(sum.Current(), Value(int64_t{6}));
  EXPECT_EQ(cnt.Current(), Value(int64_t{3}));
  EXPECT_EQ(avg.Current(), Value(2.0));
  sum.Reset();
  EXPECT_TRUE(sum.Current().is_null());
}

TEST(SortTest, SingleKeyAscending) {
  Table t = Orders();
  EvalContext ctx;
  auto perm = ops::SortIndices(t, {{Expr::Col("amount"), true}}, ctx);
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (SelVector{2, 0, 4, 1, 3}));
}

TEST(SortTest, DescendingAndSecondary) {
  Table t = Orders();
  EvalContext ctx;
  // cust desc, amount asc.
  auto sorted = ops::SortTable(
      t, {{Expr::Col("cust"), false}, {Expr::Col("amount"), true}}, ctx);
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->GetRow(0)[1], Value("cat"));
  EXPECT_EQ(sorted->GetRow(1)[1], Value("bob"));
  EXPECT_EQ(sorted->GetRow(1)[2], Value(15.0));
}

TEST(SortTest, NullsFirstAscending) {
  Table t(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value(5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value(1)}).ok());
  EvalContext ctx;
  auto perm = ops::SortIndices(t, {{Expr::Col("x"), true}}, ctx);
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (SelVector{1, 2, 0}));
}

TEST(SortTest, StableOnTies) {
  Table t(Schema({{"k", DataType::kInt64}, {"i", DataType::kInt64}}));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i % 2), Value(i)}).ok());
  }
  EvalContext ctx;
  auto perm = ops::SortIndices(t, {{Expr::Col("k"), true}}, ctx);
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(*perm, (SelVector{0, 2, 4, 1, 3, 5}));
}

TEST(SortTest, TopNWithAndWithoutKeys) {
  Table t = Orders();
  EvalContext ctx;
  auto top = ops::TopNIndices(t, {{Expr::Col("amount"), false}}, 2, ctx);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(*top, (SelVector{3, 1}));
  // No keys: arrival order.
  top = ops::TopNIndices(t, {}, 3, ctx);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(*top, (SelVector{0, 1, 2}));
  // n larger than table.
  top = ops::TopNIndices(t, {}, 100, ctx);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 5u);
}

TEST(JoinTest, MaterializeEmptyMatches) {
  Table orders = Orders();
  Table pay = Payments();
  auto joined = ops::MaterializeJoin(orders, pay, {});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 0u);
  EXPECT_EQ(joined->schema().num_fields(),
            orders.num_columns() + pay.num_columns());
}

TEST(JoinTest, EmptyInputsYieldNoMatches) {
  Table empty(Orders().schema());
  Table pay = Payments();
  auto m = ops::HashJoinIndices(empty, pay, {{"id", "order_id"}});
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->left.empty());
  EvalContext ctx;
  auto nl = ops::NestedLoopJoin(empty, pay, *Expr::Lit(Value(true)), ctx);
  ASSERT_TRUE(nl.ok());
  EXPECT_TRUE(nl->left.empty());
}

TEST(JoinTest, MissingKeyColumnRejected) {
  Table orders = Orders();
  Table pay = Payments();
  EXPECT_FALSE(ops::HashJoinIndices(orders, pay, {{"nope", "order_id"}}).ok());
  EXPECT_FALSE(ops::HashJoinIndices(orders, pay, {}).ok());
}

TEST(JoinTest, PhysicalKeyTypeMismatchRejected) {
  Table a(Schema({{"k", DataType::kInt64}}));
  Table b(Schema({{"k2", DataType::kDouble}}));
  auto m = ops::HashJoinIndices(a, b, {{"k", "k2"}});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kTypeMismatch);
}

TEST(ProjectTest, EmptyInputKeepsSchema) {
  Table t(Orders().schema());
  EvalContext ctx;
  auto out = ops::Project(
      t, {{Expr::Bin(BinaryOp::kMul, Expr::Col("amount"), Expr::Lit(2)), "d"}},
      ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
  EXPECT_EQ(out->schema().field(0).type, DataType::kDouble);
}

TEST(AggregateTest, MinMaxOverStrings) {
  Table t = Orders();
  EvalContext ctx;
  auto out = ops::Aggregate(t, {},
                            {{AggFunc::kMin, Expr::Col("cust"), "lo"},
                             {AggFunc::kMax, Expr::Col("cust"), "hi"}},
                            ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRow(0)[0], Value("ann"));
  EXPECT_EQ(out->GetRow(0)[1], Value("cat"));
}

TEST(AggregateTest, SumOfStringsRejected) {
  Table t = Orders();
  EvalContext ctx;
  auto out =
      ops::Aggregate(t, {}, {{AggFunc::kSum, Expr::Col("cust"), "s"}}, ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTypeMismatch);
}

TEST(AggregateTest, NullGroupKeysFormAGroup) {
  Table t(Schema({{"g", DataType::kInt64}, {"v", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(7), Value(2)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value(3)}).ok());
  EvalContext ctx;
  auto out = ops::Aggregate(t, {{Expr::Col("g"), "g"}},
                            {{AggFunc::kSum, Expr::Col("v"), "s"}}, ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  // First-seen order: the NULL group first with sum 4.
  EXPECT_TRUE(out->GetRow(0)[0].is_null());
  EXPECT_EQ(out->GetRow(0)[1], Value(int64_t{4}));
}

TEST(DeleteTest, DeleteWhere) {
  Table t = Orders();
  EvalContext ctx;
  auto n = ops::DeleteWhere(
      &t, *Expr::Bin(BinaryOp::kEq, Expr::Col("cust"), Expr::Lit("bob")), ctx);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(t.num_rows(), 3u);
  // Remaining ids: 1, 3, 4.
  EXPECT_EQ(t.GetRow(2)[0], Value(4));
}

TEST(DeleteTest, KeepOnly) {
  Table t = Orders();
  ASSERT_TRUE(ops::KeepOnly(&t, {0, 2}).ok());
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetRow(1)[0], Value(3));
}

// ---------------------------------------------------------------------------
// Vectorized kernel layer (DESIGN.md §12). The determinism contract says
// every backend × dispatch combination produces byte-identical output, so
// these tests run each input through the forced-scalar path, the active
// SIMD path and the SIMD+morsel path and compare results bit-for-bit.

Column RandomIntColumn(size_t n, uint32_t mod, uint64_t seed) {
  Random rng(seed);
  Column c(DataType::kInt64);
  c.ints().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    c.AppendInt(static_cast<int64_t>(rng.Uniform(mod)));
  }
  return c;
}

Column RandomDoubleColumn(size_t n, uint64_t seed) {
  Random rng(seed);
  Column c(DataType::kDouble);
  c.doubles().reserve(n);
  for (size_t i = 0; i < n; ++i) {
    c.AppendDouble(static_cast<double>(rng.Uniform(1u << 20)) * 0.25);
  }
  return c;
}

// Bitwise equality for FoldState: double fields must match to the bit,
// not just compare equal (that is the byte-identity guarantee).
void ExpectFoldBitsEq(const simd::FoldState& a, const simd::FoldState& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.isum, b.isum);
  EXPECT_EQ(a.seen, b.seen);
  EXPECT_EQ(a.imin, b.imin);
  EXPECT_EQ(a.imax, b.imax);
  EXPECT_EQ(std::memcmp(&a.dsum, &b.dsum, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.dmin, &b.dmin, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.dmax, &b.dmax, sizeof(double)), 0);
}

TEST(VectorizedKernelTest, EmptyColumn) {
  Column i(DataType::kInt64);
  Column d(DataType::kDouble);
  EXPECT_TRUE(ops::kern::SelectCmpI64Col(i, simd::Cmp::kLt, 5).empty());
  EXPECT_TRUE(ops::kern::SelectRangeF64Col(d, 0.0, true, 1.0, true).empty());
  const simd::FoldState f = ops::kern::FoldNumeric(i);
  EXPECT_EQ(f.count, 0u);
  EXPECT_FALSE(f.seen);
}

TEST(VectorizedKernelTest, AllPassAndNonePass) {
  const size_t n = 2 * ops::kMorselRows + 7;  // spans a morsel boundary
  Column c = RandomIntColumn(n, 1000, 11);
  const SelVector all = ops::kern::SelectCmpI64Col(c, simd::Cmp::kLt, 1000);
  ASSERT_EQ(all.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(all[i], static_cast<uint32_t>(i));
  EXPECT_TRUE(ops::kern::SelectCmpI64Col(c, simd::Cmp::kGe, 1000).empty());
}

TEST(VectorizedKernelTest, MorselBoundarySizesMatchScalar) {
  for (const size_t n :
       {ops::kMorselRows - 1, ops::kMorselRows, ops::kMorselRows + 1,
        2 * ops::kMorselRows - 1, 2 * ops::kMorselRows,
        2 * ops::kMorselRows + 1}) {
    Column ic = RandomIntColumn(n, 10000, n);
    Column dc = RandomDoubleColumn(n, n + 1);

    simd::SetForceScalar(true);
    const SelVector sel_s = ops::kern::SelectCmpI64Col(ic, simd::Cmp::kLt, 5000);
    const SelVector rng_s = ops::kern::SelectRangeF64Col(dc, 100.0, true,
                                                         200000.0, false);
    const simd::FoldState fold_s = ops::kern::FoldNumeric(dc);
    simd::SetForceScalar(false);

    const SelVector sel_v = ops::kern::SelectCmpI64Col(ic, simd::Cmp::kLt, 5000);
    const SelVector rng_v = ops::kern::SelectRangeF64Col(dc, 100.0, true,
                                                         200000.0, false);
    const simd::FoldState fold_v = ops::kern::FoldNumeric(dc);

    EXPECT_EQ(sel_s, sel_v) << "n=" << n;
    EXPECT_EQ(rng_s, rng_v) << "n=" << n;
    ExpectFoldBitsEq(fold_s, fold_v);
  }
}

TEST(VectorizedKernelTest, UnalignedHeadAfterErasePrefix) {
  const size_t n = ops::kMorselRows + 513;
  Column c = RandomIntColumn(n, 10000, 77);
  // Consuming a prefix advances the logical head: View() now points into
  // the middle of the allocation, so vector loads see an unaligned base.
  c.ErasePrefix(3);
  ASSERT_EQ(c.size(), n - 3);

  simd::SetForceScalar(true);
  const SelVector sel_s = ops::kern::SelectCmpI64Col(c, simd::Cmp::kGe, 5000);
  const simd::FoldState fold_s = ops::kern::FoldNumeric(c);
  simd::SetForceScalar(false);
  const SelVector sel_v = ops::kern::SelectCmpI64Col(c, simd::Cmp::kGe, 5000);
  const simd::FoldState fold_v = ops::kern::FoldNumeric(c);

  EXPECT_EQ(sel_s, sel_v);
  ExpectFoldBitsEq(fold_s, fold_v);
  // Spot-check against the row-at-a-time view of the same column.
  SelVector expected;
  for (size_t i = 0; i < c.size(); ++i) {
    if (c.ints()[i] >= 5000) expected.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_EQ(sel_v, expected);
}

TEST(VectorizedKernelTest, MorselDispatchIsByteIdentical) {
  const size_t n = 3 * ops::kMorselRows + 1;
  Column ic = RandomIntColumn(n, 10000, 5);
  Column dc = RandomDoubleColumn(n, 6);
  std::vector<int64_t> keys(ic.ints().data(), ic.ints().data() + n);

  simd::SetForceScalar(true);
  const SelVector sel_s = ops::kern::SelectCmpI64Col(ic, simd::Cmp::kLt, 5000);
  const simd::FoldState fold_s = ops::kern::FoldNumeric(dc);
  const simd::FoldState fsel_s = ops::kern::FoldNumericSel(dc, sel_s);
  std::vector<uint64_t> hash_s;
  ops::kern::HashI64Span(keys.data(), n, &hash_s);
  simd::SetForceScalar(false);

  ops::PoolMorselExecutor pool(2);
  ops::ScopedMorselExecutor scoped(&pool);
  const SelVector sel_m = ops::kern::SelectCmpI64Col(ic, simd::Cmp::kLt, 5000);
  const simd::FoldState fold_m = ops::kern::FoldNumeric(dc);
  const simd::FoldState fsel_m = ops::kern::FoldNumericSel(dc, sel_m);
  std::vector<uint64_t> hash_m;
  ops::kern::HashI64Span(keys.data(), n, &hash_m);

  EXPECT_EQ(sel_s, sel_m);
  ExpectFoldBitsEq(fold_s, fold_m);
  ExpectFoldBitsEq(fsel_s, fsel_m);
  EXPECT_EQ(hash_s, hash_m);
}

TEST(VectorizedKernelTest, NullsRouteToValidityAwarePath) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 100; ++i) {
    if (i % 7 == 0) {
      c.AppendNull();
    } else {
      c.AppendInt(i);
    }
  }
  const SelVector sel = ops::kern::SelectCmpI64Col(c, simd::Cmp::kGe, 50);
  for (uint32_t r : sel) {
    EXPECT_TRUE(c.IsValid(r));
    EXPECT_GE(c.ints()[r], 50);
  }
  const simd::FoldState f = ops::kern::FoldNumeric(c);
  EXPECT_EQ(f.count, 85u);  // 15 of 100 are null
}

// A writer keeps appending to the live column while pool workers run
// morselized kernels over a COW snapshot taken beforehand. The snapshot
// pins the old buffer, so the readers' results must stay stable and the
// run must be race-free under TSan.
TEST(VectorizedKernelTest, ConcurrentMorselReadersVsSnapshotWriter) {
  const size_t n = 2 * ops::kMorselRows;
  Column live = RandomIntColumn(n, 10000, 21);
  Column snapshot = live;  // COW: shares the buffer until the writer detaches

  const SelVector expected =
      ops::kern::SelectCmpI64Col(snapshot, simd::Cmp::kLt, 5000);
  const simd::FoldState expected_fold = ops::kern::FoldNumeric(snapshot);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      live.AppendInt(1);  // first append detaches from the snapshot
    }
  });

  {
    ops::PoolMorselExecutor pool(2);
    ops::ScopedMorselExecutor scoped(&pool);
    for (int round = 0; round < 20; ++round) {
      const SelVector sel =
          ops::kern::SelectCmpI64Col(snapshot, simd::Cmp::kLt, 5000);
      EXPECT_EQ(sel, expected);
      ExpectFoldBitsEq(ops::kern::FoldNumeric(snapshot), expected_fold);
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(live.size(), n);
}

}  // namespace
}  // namespace datacell
