// Validates the declarative Linear Road formulation (queries_sql.h): the
// whole 38-query workload is expressible in this repository's SQL dialect
// — every statement parses, every continuous statement registers as a
// factory against the declared schema, and one executable slice runs end
// to end.

#include <gtest/gtest.h>

#include <map>

#include "core/scheduler.h"
#include "lroad/queries_sql.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "util/clock.h"

namespace datacell::lroad {
namespace {

class LroadSqlTest : public ::testing::Test {
 protected:
  LroadSqlTest() : clock_(0), engine_(&clock_), session_(&engine_) {}

  void ApplySchema() {
    for (const std::string& ddl : LinearRoadSchemaSql()) {
      auto st = session_.Execute(ddl);
      ASSERT_TRUE(st.ok()) << ddl << " -> " << st.status().ToString();
    }
  }

  SimulatedClock clock_;
  core::Engine engine_;
  sql::Session session_;
};

TEST_F(LroadSqlTest, ThirtyEightQueriesInSevenCollections) {
  const auto& queries = LinearRoadQueriesSql();
  EXPECT_EQ(queries.size(), 38u);
  std::map<std::string, int> per_collection;
  for (const LogicalQuery& q : queries) per_collection[q.collection]++;
  EXPECT_EQ(per_collection["Q1"], 3);
  EXPECT_EQ(per_collection["Q2"], 5);
  EXPECT_EQ(per_collection["Q3"], 5);
  EXPECT_EQ(per_collection["Q4"], 1);
  EXPECT_EQ(per_collection["Q5"], 4);
  EXPECT_EQ(per_collection["Q6"], 2);
  EXPECT_EQ(per_collection["Q7"], 18);
}

TEST_F(LroadSqlTest, EveryQueryParses) {
  for (const LogicalQuery& q : LinearRoadQueriesSql()) {
    SCOPED_TRACE(std::string(q.collection) + "/" + q.name);
    auto stmt = sql::ParseOne(q.sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    // The declared continuous/one-time nature matches the basket
    // expressions actually present.
    EXPECT_EQ(sql::IsContinuous(**stmt), q.continuous);
  }
}

TEST_F(LroadSqlTest, EveryQueryExplains) {
  ApplySchema();
  for (const LogicalQuery& q : LinearRoadQueriesSql()) {
    SCOPED_TRACE(std::string(q.collection) + "/" + q.name);
    auto plan = session_.Explain(q.sql);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_NE(plan->find(q.continuous ? "[continuous query]" : "[one-time]"),
              std::string::npos);
  }
}

TEST_F(LroadSqlTest, ContinuousQueriesRegisterAgainstSchema) {
  ApplySchema();
  size_t registered = 0;
  for (const LogicalQuery& q : LinearRoadQueriesSql()) {
    if (!q.continuous) continue;
    SCOPED_TRACE(std::string(q.collection) + "/" + q.name);
    auto f = session_.RegisterContinuousQuery(
        std::string(q.collection) + "_" + q.name, q.sql);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ++registered;
  }
  EXPECT_GE(registered, 10u);
  EXPECT_EQ(engine_.scheduler().num_transitions(), registered);
}

TEST_F(LroadSqlTest, ExecutableSliceRunsEndToEnd) {
  // Run the router, zero-speed filter and balance answering declaratively.
  ApplySchema();
  const auto& queries = LinearRoadQueriesSql();
  auto find = [&](const char* name) -> const LogicalQuery& {
    for (const LogicalQuery& q : queries) {
      if (std::string(q.name) == name) return q;
    }
    ADD_FAILURE() << "missing query " << name;
    return queries[0];
  };
  ASSERT_TRUE(
      session_.RegisterContinuousQuery("route", find("route_by_type").sql).ok());
  ASSERT_TRUE(session_
                  .RegisterContinuousQuery("zs", find("zero_speed_reports").sql)
                  .ok());
  ASSERT_TRUE(
      session_.RegisterContinuousQuery("bal", find("answer_balance").sql).ok());

  // Two position reports (one stopped) and one balance request.
  ASSERT_TRUE(session_
                  .Execute("insert into lr_in values "
                           "(0, 10, 1, 0, 0, 1, 0, 3, 16000, -1, 0), "
                           "(0, 10, 2, 55, 0, 2, 0, 4, 22000, -1, 0), "
                           "(2, 11, 1, 0, 0, 0, 0, 0, 0, 900, 0)")
                  .ok());
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());

  // Routed: both reports left lr_in; the stopped one reached lr_zero_speed.
  EXPECT_EQ((*engine_.GetBasket("lr_in"))->size(), 0u);
  EXPECT_EQ((*engine_.GetBasket("lr_zero_speed"))->size(), 1u);
  auto answers = session_.Execute("select qid, vid from lr_out_balance");
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->num_rows(), 1u);
  EXPECT_EQ(answers->GetRow(0)[0], Value(900));
  EXPECT_EQ(answers->GetRow(0)[1], Value(1));
}

}  // namespace
}  // namespace datacell::lroad
