#!/usr/bin/env python3
"""Golden-diagnostics harness for the datacell-* tidy checks.

Each golden/<check>.cc.in file exercises one check — lines that must warn
and lines that must stay silent, including the NOLINT suppression grammar.
The checker's stdout over that file must match golden/<check>.expected
byte-for-byte. The .cc.in extension keeps the deliberately-violating
inputs out of normal tidy sweeps (collect_sources only walks .cc/.h).

Run from anywhere: paths are resolved relative to this script. Exit 0 on
success, 1 on any mismatch — wired into ctest as tidy_golden_diagnostics.
"""

import difflib
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
CHECKER = os.path.join(ROOT, "tools", "datacell_tidy", "datacell_tidy.py")
GOLDEN = os.path.join(HERE, "golden")
SUFFIX = ".cc.in"


def main():
    cases = sorted(f for f in os.listdir(GOLDEN) if f.endswith(SUFFIX))
    if not cases:
        print("error: no golden inputs under " + GOLDEN, file=sys.stderr)
        return 2
    failures = 0
    for case in cases:
        stem = case[: -len(SUFFIX)]
        check = "datacell-" + stem
        with open(os.path.join(GOLDEN, stem + ".expected")) as f:
            expected = f.read()
        proc = subprocess.run(
            [sys.executable, CHECKER, "--repo-root", ROOT, "--checks", check,
             os.path.join(GOLDEN, case)],
            capture_output=True, text=True)
        # The checker echoes paths as passed; strip the absolute repo
        # prefix so .expected files stay machine-independent.
        got = proc.stdout.replace(ROOT + os.sep, "")
        if got == expected:
            print(f"ok   {check}")
            continue
        failures += 1
        print(f"FAIL {check}: diagnostics diverge from {stem}.expected")
        sys.stdout.writelines(difflib.unified_diff(
            expected.splitlines(keepends=True),
            got.splitlines(keepends=True),
            fromfile=stem + ".expected", tofile="checker output"))
    if failures:
        print(f"{failures}/{len(cases)} golden case(s) failed",
              file=sys.stderr)
        return 1
    print(f"all {len(cases)} golden case(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
