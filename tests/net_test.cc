#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/actuator.h"
#include "net/codec.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "net/shard.h"
#include "net/socket.h"
#include "net/wakeup.h"
#include "storage/ingest_log.h"
#include "util/clock.h"

namespace datacell::net {
namespace {

Schema StreamSchema() { return Sensor::StreamSchema(); }

TEST(CodecTest, SchemaHeaderRoundTrip) {
  Codec codec(StreamSchema());
  std::string header = codec.EncodeSchemaHeader();
  EXPECT_EQ(header, "tag:timestamp|payload:int");
  auto schema = Codec::DecodeSchemaHeader(header);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(*schema, StreamSchema());
}

TEST(CodecTest, RowRoundTrip) {
  Schema s({{"i", DataType::kInt64},
            {"d", DataType::kDouble},
            {"b", DataType::kBool},
            {"s", DataType::kString}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(
      t.AppendRow({Value(-7), Value(2.5), Value(true), Value("hi")}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value(-7));
  EXPECT_EQ((*row)[1], Value(2.5));
  EXPECT_EQ((*row)[2], Value(true));
  EXPECT_EQ((*row)[3], Value("hi"));
}

TEST(CodecTest, NullsAndEscaping) {
  Schema s({{"a", DataType::kString}, {"b", DataType::kInt64}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("p|q\\r\nx"), Value::Null()}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->find('\n'), std::string::npos);
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value("p|q\\r\nx"));
  EXPECT_TRUE((*row)[1].is_null());
}

TEST(CodecTest, DoublePrecisionRoundTrip) {
  Schema s({{"d", DataType::kDouble}});
  Codec codec(s);
  Table t(s);
  const double v = 0.1 + 0.2;  // not exactly representable
  ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].double_value(), v);
}

TEST(CodecTest, ArityMismatchRejected) {
  Codec codec(StreamSchema());
  EXPECT_FALSE(codec.DecodeRow("1|2|3").ok());
  EXPECT_FALSE(codec.DecodeRow("1").ok());
}

TEST(CodecTest, BadFieldRejected) {
  Codec codec(StreamSchema());
  EXPECT_FALSE(codec.DecodeRow("notanint|5").ok());
  EXPECT_FALSE(codec.DecodeRow("1|notanint").ok());
}

TEST(CodecTest, EncodeTableMultipleLines) {
  Codec codec(StreamSchema());
  Table t(StreamSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(10)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value(20)}).ok());
  auto payload = codec.EncodeTable(t);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "1|10\n2|20\n");
}

TEST(SocketTest, LoopbackEcho) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto line = conn->ReadLine();
    ASSERT_TRUE(line.ok());
    ASSERT_TRUE(conn->WriteAll("echo:" + *line + "\n").ok());
  });
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->WriteAll("hello\n").ok());
  auto reply = client->ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:hello");
  server.join();
}

TEST(SocketTest, ReadLineEof) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->WriteAll("only\n").ok());
    // close without more data
  });
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto l1 = client->ReadLine();
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(*l1, "only");
  auto l2 = client->ReadLine();
  EXPECT_EQ(l2.status().code(), StatusCode::kNotFound);  // clean EOF
  server.join();
}

TEST(EndToEndTest, SensorThroughKernelToActuator) {
  // sensor -> TcpIngress -> basket -> factory(select *) -> out basket ->
  // emitter(TcpEgress) -> actuator; the full §6.1 pipeline on loopback.
  SystemClock* clock = SystemClock::Get();

  core::ReceptorPtr receptor = std::make_shared<core::Receptor>("r");
  auto in = std::make_shared<core::Basket>("in", StreamSchema());
  receptor->AddOutput(in);
  auto out = std::make_shared<core::Basket>("out", in->schema(), false);

  auto factory = std::make_shared<core::Factory>(
      "q", [out](core::FactoryContext& ctx) -> Status {
        Table batch = ctx.input(0).TakeAll();
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(batch, ctx.now()));
        (void)n;
        return Status::OK();
      });
  factory->AddInput(in);
  factory->AddOutput(out);

  Actuator actuator(clock);
  ASSERT_TRUE(actuator.Start().ok());

  auto egress = TcpEgress::Connect("127.0.0.1", actuator.port());
  ASSERT_TRUE(egress.ok());
  auto emitter =
      std::make_shared<core::Emitter>("e", (*egress)->MakeSink());
  emitter->AddInput(out);

  TcpIngress ingress(receptor, Codec(StreamSchema()), clock);
  ASSERT_TRUE(ingress.Start().ok());

  core::Scheduler sched(clock);
  sched.Register(factory);
  sched.Register(emitter);
  ASSERT_TRUE(sched.Start().ok());

  Sensor::Options opts;
  opts.num_tuples = 500;
  opts.tuples_per_write = 50;
  std::thread sensor([&] {
    ASSERT_TRUE(Sensor::Run("127.0.0.1", ingress.port(), opts, clock).ok());
  });
  sensor.join();

  // Wait until the kernel drained everything.
  for (int i = 0; i < 2000 && actuator.stats().tuples < 500; ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  ASSERT_TRUE((*egress)->Finish().ok());
  actuator.WaitFinished();

  auto stats = actuator.stats();
  EXPECT_EQ(stats.tuples, 500u);
  EXPECT_EQ(ingress.tuples_received(), 500u);
  EXPECT_GT(stats.MeanLatency(), 0.0);
  EXPECT_GE(stats.Elapsed(), 0);
}

TEST(EgressTest, SchemaHeaderWrittenExactlyOnce) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::vector<std::string> lines;
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    while (true) {
      auto line = conn->ReadLine();
      if (!line.ok()) break;
      lines.push_back(*line);
    }
  });
  auto egress = TcpEgress::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(egress.ok());
  core::Emitter::Sink sink = (*egress)->MakeSink();
  Table batch(StreamSchema());
  ASSERT_TRUE(batch.AppendRow({Value(int64_t{1}), Value(10)}).ok());
  ASSERT_TRUE(sink(batch).ok());
  ASSERT_TRUE(sink(batch).ok());  // second batch: no second header
  ASSERT_TRUE((*egress)->Finish().ok());
  server.join();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "tag:timestamp|payload:int");
  EXPECT_EQ(lines[1], "1|10");
  EXPECT_EQ(lines[2], "1|10");
}

TEST(EndToEndTest, SensorDirectToActuator) {
  // The paper's "without the kernel" baseline.
  SystemClock* clock = SystemClock::Get();
  Actuator actuator(clock);
  ASSERT_TRUE(actuator.Start().ok());
  Sensor::Options opts;
  opts.num_tuples = 300;
  opts.tuples_per_write = 30;
  ASSERT_TRUE(Sensor::Run("127.0.0.1", actuator.port(), opts, clock).ok());
  actuator.WaitFinished();
  EXPECT_EQ(actuator.stats().tuples, 300u);
}

// ---------------------------------------------------------------------------
// Codec correctness fixes
// ---------------------------------------------------------------------------

TEST(CodecTest, LiteralNullStringIsNotSqlNull) {
  Schema s({{"a", DataType::kString}, {"b", DataType::kString}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("NULL"), Value::Null()}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value("NULL"));  // the string survives as a string
  EXPECT_TRUE((*row)[1].is_null());     // the null survives as a null
}

TEST(CodecTest, NullMarkerLookalikeStringsRoundTrip) {
  // Strings that collide with the wire spelling of null must not decode as
  // null: "\N" (the marker itself), "N", and "NULL" are all plain values.
  Schema s({{"a", DataType::kString}});
  Codec codec(s);
  for (const std::string v : {"\\N", "N", "NULL", "\\NULL", "\\n"}) {
    Table t(s);
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
    auto line = codec.EncodeRow(t, 0);
    ASSERT_TRUE(line.ok());
    auto row = codec.DecodeRow(*line);
    ASSERT_TRUE(row.ok()) << v;
    EXPECT_EQ((*row)[0], Value(v));
  }
}

TEST(CodecTest, BareNullWordStillNullForNonStringFields) {
  // Backward compatibility with pre-\N encoders, where no legal value
  // collides with the word.
  Codec codec(StreamSchema());
  auto row = codec.DecodeRow("NULL|7");
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_null());
  EXPECT_EQ((*row)[1], Value(7));
}

TEST(CodecTest, SchemaHeaderEscapedFieldNames) {
  Schema s({{"pipe|name", DataType::kInt64},
            {"back\\slash", DataType::kString},
            {"plain", DataType::kDouble}});
  Codec codec(s);
  std::string header = codec.EncodeSchemaHeader();
  auto decoded = Codec::DecodeSchemaHeader(header);
  ASSERT_TRUE(decoded.ok()) << header;
  EXPECT_EQ(*decoded, s);
}

TEST(CodecTest, SchemaHeaderEmptyFieldNameRejected) {
  EXPECT_FALSE(Codec::DecodeSchemaHeader(":int|b:int").ok());
  EXPECT_FALSE(Codec::DecodeSchemaHeader("a:int|:string").ok());
}

// ---------------------------------------------------------------------------
// Gateway: multi-client fan-in, fault injection, flow control
// ---------------------------------------------------------------------------

struct GatewayFixture {
  explicit GatewayFixture(size_t max_batch_rows = 1024)
      : clock(SystemClock::Get()),
        basket(std::make_shared<core::Basket>("in", StreamSchema())),
        receptor(std::make_shared<core::Receptor>("r")),
        ingress(receptor, Codec(StreamSchema()), SystemClock::Get(),
                max_batch_rows) {
    receptor->AddOutput(basket);
  }

  bool WaitFinished(int timeout_ms = 5000) {
    for (int i = 0; i < timeout_ms && !ingress.finished(); ++i) {
      clock->SleepFor(1000);
    }
    return ingress.finished();
  }

  SystemClock* clock;
  core::BasketPtr basket;
  core::ReceptorPtr receptor;
  TcpIngress ingress;
};

TEST(GatewayTest, MultiClientFanIn) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());

  constexpr int kClients = 8;
  constexpr uint64_t kPerClient = 200;
  std::vector<std::thread> sensors;
  for (int c = 0; c < kClients; ++c) {
    sensors.emplace_back([&, c] {
      Sensor::Options opts;
      opts.num_tuples = kPerClient;
      opts.tuples_per_write = 17;
      opts.seed = static_cast<uint64_t>(c) + 1;
      ASSERT_TRUE(
          Sensor::Run("127.0.0.1", fx.ingress.port(), opts, fx.clock).ok());
    });
  }
  for (auto& t : sensors) t.join();
  ASSERT_TRUE(fx.WaitFinished());

  EXPECT_EQ(fx.ingress.connections_accepted(), kClients);
  EXPECT_EQ(fx.ingress.tuples_received(), kClients * kPerClient);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 0u);
  EXPECT_EQ(fx.basket->size(), kClients * kPerClient);
  fx.ingress.Stop();
}

TEST(GatewayTest, StopWithConnectedIdleClientReturnsQuickly) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());

  // A sensor that connects and then says nothing — the regression that used
  // to leave Stop() hanging in join() behind a blocked ReadLine.
  auto idle = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(idle.ok());
  for (int i = 0; i < 2000 && fx.ingress.active_connections() == 0; ++i) {
    fx.clock->SleepFor(1000);
  }
  ASSERT_EQ(fx.ingress.active_connections(), 1u);

  const auto t0 = std::chrono::steady_clock::now();
  fx.ingress.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(1));
  // The accepted stream was shut down, not leaked: the idle client sees EOF.
  auto line = idle->ReadLine();
  EXPECT_FALSE(line.ok());
}

TEST(GatewayTest, MalformedBurstCountedNotSilent) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  // One write so the whole burst lands in the drain loop together; valid
  // and malformed lines interleave.
  ASSERT_TRUE(conn->WriteAll(codec.EncodeSchemaHeader() +
                             "\n1|10\ngarbage\n2|20\n3|not_an_int\n4|40\n"
                             "5|\n6|60\n")
                  .ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.tuples_received(), 4u);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 3u);
  EXPECT_EQ(fx.basket->size(), 4u);
  fx.ingress.Stop();
}

TEST(GatewayTest, MidStreamDisconnectKeepsServingOthers) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  Codec codec(StreamSchema());

  // Client 1 dies mid-stream with a hard reset (SO_LINGER 0 => RST).
  {
    auto doomed = TcpStream::Connect("127.0.0.1", fx.ingress.port());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(
        doomed->WriteAll(codec.EncodeSchemaHeader() + "\n1|10\n2|2").ok());
    struct linger lg = {1, 0};
    ::setsockopt(doomed->fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    doomed->Close();
  }

  // Client 2 streams normally and must be unaffected.
  auto ok_client = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(ok_client.ok());
  ASSERT_TRUE(ok_client
                  ->WriteAll(codec.EncodeSchemaHeader() +
                             "\n7|70\n8|80\n9|90\n")
                  .ok());
  ASSERT_TRUE(ok_client->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  // Whatever the reset connection managed to deliver is kept; client 2's
  // three tuples all arrive.
  EXPECT_GE(fx.ingress.tuples_received(), 3u);
  EXPECT_GE(fx.basket->size(), 3u);
  Table contents = fx.basket->Peek();
  int from_ok_client = 0;
  for (size_t i = 0; i < contents.num_rows(); ++i) {
    const int64_t payload = contents.GetRow(i)[1].int_value();
    if (payload == 70 || payload == 80 || payload == 90) ++from_ok_client;
  }
  EXPECT_EQ(from_ok_client, 3);
  fx.ingress.Stop();
}

TEST(GatewayTest, TornCompleteLineAtEofDelivered) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  // The final line is missing its newline; it is still a whole tuple.
  ASSERT_TRUE(
      conn->WriteAll(codec.EncodeSchemaHeader() + "\n5|50\n7|7").ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.tuples_received(), 2u);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 0u);
  fx.ingress.Stop();
}

TEST(GatewayTest, TornPartialLineAtEofCountedDropped) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  // The connection tears in the middle of the second tuple's payload.
  ASSERT_TRUE(
      conn->WriteAll(codec.EncodeSchemaHeader() + "\n5|50\n8|").ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.tuples_received(), 1u);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 1u);
  fx.ingress.Stop();
}

TEST(GatewayTest, BackpressureEngagesAndReleasesWithoutLoss) {
  GatewayFixture fx(/*max_batch_rows=*/4);
  fx.basket->SetCapacity(/*high_watermark=*/8, /*low_watermark=*/4);
  ASSERT_TRUE(fx.ingress.Start().ok());

  constexpr uint64_t kTuples = 50;
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  std::string payload = codec.EncodeSchemaHeader() + "\n";
  for (uint64_t i = 0; i < kTuples; ++i) {
    payload += std::to_string(i) + "|" + std::to_string(i * 10) + "\n";
  }
  ASSERT_TRUE(conn->WriteAll(payload).ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());

  // With no consumer the valve must close at the high watermark: the
  // basket holds at most 8 rows and the gateway stops reading.
  for (int i = 0; i < 5000 && !fx.ingress.backpressured(); ++i) {
    fx.clock->SleepFor(1000);
  }
  EXPECT_TRUE(fx.ingress.backpressured());
  EXPECT_LE(fx.basket->size(), 8u);
  EXPECT_LT(fx.ingress.tuples_received(), kTuples);

  // Draining past the low watermark releases it; every tuple eventually
  // arrives and none were dropped anywhere (push-back, not drop).
  uint64_t taken = 0;
  for (int i = 0; i < 5000 && !fx.ingress.finished(); ++i) {
    taken += fx.basket->TakeAll().num_rows();
    fx.clock->SleepFor(1000);
  }
  ASSERT_TRUE(fx.ingress.finished());
  taken += fx.basket->TakeAll().num_rows();

  EXPECT_EQ(taken, kTuples);
  EXPECT_EQ(fx.ingress.tuples_received(), kTuples);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 0u);
  EXPECT_EQ(fx.basket->stats().dropped, 0u);
  EXPECT_LE(fx.basket->stats().peak_rows, 8u);
  EXPECT_GE(fx.ingress.backpressure_engagements(), 1u);
  EXPECT_FALSE(fx.ingress.backpressured());
  fx.ingress.Stop();
}

TEST(GatewayTest, HandshakeFailureDropsOnlyThatConnection) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  Codec codec(StreamSchema());

  auto bad = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->WriteAll("wrong:int|schema:string\n1|x\n").ok());
  ASSERT_TRUE(bad->ShutdownWrite().ok());

  auto good = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(
      good->WriteAll(codec.EncodeSchemaHeader() + "\n1|10\n2|20\n").ok());
  ASSERT_TRUE(good->ShutdownWrite().ok());

  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.connections_accepted(), 2u);
  EXPECT_EQ(fx.ingress.tuples_received(), 2u);
  EXPECT_EQ(fx.basket->size(), 2u);
  fx.ingress.Stop();
}

// ---------------------------------------------------------------------------
// Reactor correctness regressions (wake pipe ordering, EAGAIN writes)
// ---------------------------------------------------------------------------

// Regression for the lost reactor wakeup: the old drain path read the
// self-pipe empty and *then* cleared the pending flag, so a Notify() that
// raced into that window saw pending == true, skipped its write, and the
// wakeup evaporated — the reactor slept until the idle timeout. WakePipe
// clears before each read (loop form); this test drives a notify into the
// exact window via the drain hook. On the reverted ordering the hook's
// Notify() returns false (suppressed by the stale flag) with the pipe
// already empty, and the first expectation fails.
TEST(WakePipeTest, WakePipeLostWakeupRegression) {
  WakePipe wp;
  ASSERT_TRUE(wp.Open().ok());
  ASSERT_TRUE(wp.Notify());    // byte in flight, pending set
  EXPECT_FALSE(wp.Notify());   // deduped while undrained

  bool racing_notify_observable = false;
  int hook_calls = 0;
  wp.set_drain_hook_for_test([&] {
    // Fires right after a read(2) inside Drain — the historical race
    // window between "pipe drained" and "flag cleared".
    if (++hook_calls == 1) racing_notify_observable = wp.Notify();
  });
  wp.Drain();

  // The racing notify must have made itself observable: with clear-before-
  // read it wins the exchange (the flag was already cleared) and writes a
  // byte that a later pass of the same Drain consumes.
  EXPECT_TRUE(racing_notify_observable);
  EXPECT_GE(hook_calls, 2) << "Drain did not loop back for the raced byte";

  // And the pipe is not wedged: a fresh notify writes a real byte (a
  // stranded pending flag would suppress it forever).
  wp.set_drain_hook_for_test(nullptr);
  EXPECT_TRUE(wp.Notify());
  wp.Drain();
  wp.Close();
}

// Regression for TcpStream::WriteAll on a non-blocking socket: the old
// loop treated EAGAIN like a hard error, so a reply that overran the send
// buffer (slow scraper, tiny window) surfaced as IOError mid-line. Now it
// polls for POLLOUT and resumes. Shrunken SO_SNDBUF + a reader that only
// starts draining after a delay force the stall deterministically.
TEST(SocketTest, WriteAllRidesOutFullSendBuffer) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto server = listener->Accept();
  ASSERT_TRUE(server.ok());

  // Minimum send buffer (the kernel clamps up to its floor) and a payload
  // orders of magnitude larger, so the first writes hit EAGAIN while the
  // reader is still asleep.
  int sndbuf = 1;
  ::setsockopt(server->fd(), SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  ASSERT_TRUE(server->SetNonBlocking(true).ok());
  const std::string payload(4 << 20, 'x');

  std::string received;
  std::thread reader([&] {
    ::usleep(50 * 1000);  // guarantee the writer fills the buffer first
    char buf[4096];
    ssize_t n;
    while ((n = ::read(client->fd(), buf, sizeof(buf))) > 0) {
      received.append(buf, static_cast<size_t>(n));
    }
  });
  Status st = server->WriteAll(payload);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(server->ShutdownWrite().ok());
  reader.join();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

// ---------------------------------------------------------------------------
// Sharded gateway: fan-in, fault injection, per-shard flow control
// ---------------------------------------------------------------------------

struct ShardedFixture {
  explicit ShardedFixture(size_t shards, size_t basket_capacity = 0,
                          size_t max_batch_rows = 1024)
      : clock(SystemClock::Get()) {
    for (size_t k = 0; k < shards; ++k) {
      auto b = std::make_shared<core::Basket>("in.s" + std::to_string(k),
                                              StreamSchema());
      if (basket_capacity > 0) b->SetCapacity(basket_capacity);
      auto r = std::make_shared<core::Receptor>("r.s" + std::to_string(k));
      r->AddOutput(b);
      baskets.push_back(std::move(b));
      receptors.push_back(std::move(r));
    }
    ShardedIngressOptions opts;
    opts.max_batch_rows = max_batch_rows;
    ingress = std::make_unique<ShardedIngress>(receptors, Codec(StreamSchema()),
                                               clock, opts);
  }

  bool WaitFinished(int timeout_ms = 5000) {
    for (int i = 0; i < timeout_ms && !ingress->finished(); ++i) {
      clock->SleepFor(1000);
    }
    return ingress->finished();
  }

  uint64_t TotalBasketRows() const {
    uint64_t total = 0;
    for (const auto& b : baskets) total += b->size();
    return total;
  }

  SystemClock* clock;
  std::vector<core::BasketPtr> baskets;
  std::vector<core::ReceptorPtr> receptors;
  std::unique_ptr<ShardedIngress> ingress;
};

TEST(ShardedGatewayTest, FanInAcrossShardsLossless) {
  ShardedFixture fx(/*shards=*/4);
  ASSERT_TRUE(fx.ingress->Start().ok());

  constexpr int kClients = 12;
  constexpr uint64_t kPerClient = 100;
  std::vector<std::thread> sensors;
  for (int c = 0; c < kClients; ++c) {
    sensors.emplace_back([&, c] {
      Sensor::Options opts;
      opts.num_tuples = kPerClient;
      opts.tuples_per_write = 13;
      opts.seed = static_cast<uint64_t>(c) + 1;
      ASSERT_TRUE(
          Sensor::Run("127.0.0.1", fx.ingress->port(), opts, fx.clock).ok());
    });
  }
  for (auto& t : sensors) t.join();
  ASSERT_TRUE(fx.WaitFinished());

  EXPECT_EQ(fx.ingress->connections_accepted(), kClients);
  EXPECT_EQ(fx.ingress->tuples_received(), kClients * kPerClient);
  EXPECT_EQ(fx.ingress->tuples_dropped(), 0u);
  EXPECT_EQ(fx.TotalBasketRows(), kClients * kPerClient);

  // fd-hash routing spread the fleet: every tuple is accounted to exactly
  // one shard, and more than one shard did real work.
  uint64_t per_shard_sum = 0;
  size_t shards_used = 0;
  for (size_t k = 0; k < fx.ingress->num_shards(); ++k) {
    const ShardedIngress::ShardStats s = fx.ingress->shard_stats(k);
    per_shard_sum += s.tuples;
    if (s.connections > 0) ++shards_used;
  }
  EXPECT_EQ(per_shard_sum, kClients * kPerClient);
  EXPECT_GE(shards_used, 2u);
  fx.ingress->Stop();
}

TEST(ShardedGatewayTest, MidStreamResetLeavesSiblingShardsLossless) {
  ShardedFixture fx(/*shards=*/4);
  ASSERT_TRUE(fx.ingress->Start().ok());
  Codec codec(StreamSchema());

  // One client dies mid-tuple with a hard RST on whatever shard it hashed
  // to; streams on the three sibling shards must not lose a byte.
  {
    auto doomed = TcpStream::Connect("127.0.0.1", fx.ingress->port());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(
        doomed->WriteAll(codec.EncodeSchemaHeader() + "\n1|10\n2|2").ok());
    struct linger lg = {1, 0};
    ::setsockopt(doomed->fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    doomed->Close();
  }

  constexpr int kSurvivors = 6;
  constexpr uint64_t kPerClient = 50;
  std::vector<std::thread> sensors;
  for (int c = 0; c < kSurvivors; ++c) {
    sensors.emplace_back([&, c] {
      Sensor::Options opts;
      opts.num_tuples = kPerClient;
      opts.seed = static_cast<uint64_t>(c) + 100;
      ASSERT_TRUE(
          Sensor::Run("127.0.0.1", fx.ingress->port(), opts, fx.clock).ok());
    });
  }
  for (auto& t : sensors) t.join();
  ASSERT_TRUE(fx.WaitFinished());

  // All survivor tuples arrive; the reset costs at most its own in-flight
  // tuples and drops nothing counted as malformed.
  EXPECT_GE(fx.ingress->tuples_received(), kSurvivors * kPerClient);
  EXPECT_LE(fx.ingress->tuples_received(), kSurvivors * kPerClient + 2);
  EXPECT_EQ(fx.ingress->tuples_dropped(), 0u);
  EXPECT_EQ(fx.TotalBasketRows(), fx.ingress->tuples_received());
  fx.ingress->Stop();
}

// Finds which shard a just-routed connection landed on by diffing the
// per-shard lifetime connection counts around the connect.
int ShardOf(ShardedFixture& fx, const std::vector<uint64_t>& before) {
  for (int waited = 0; waited < 5000; ++waited) {
    for (size_t k = 0; k < fx.ingress->num_shards(); ++k) {
      if (fx.ingress->shard_stats(k).connections > before[k]) {
        return static_cast<int>(k);
      }
    }
    fx.clock->SleepFor(1000);
  }
  return -1;
}

std::vector<uint64_t> ShardConnSnapshot(ShardedFixture& fx) {
  std::vector<uint64_t> v;
  for (size_t k = 0; k < fx.ingress->num_shards(); ++k) {
    v.push_back(fx.ingress->shard_stats(k).connections);
  }
  return v;
}

TEST(ShardedGatewayTest, BackpressureIsPerShardIndependent) {
  // Tiny per-shard baskets and batches so one client can wedge its shard's
  // credit valve while the sibling shard keeps streaming.
  ShardedFixture fx(/*shards=*/2, /*basket_capacity=*/8,
                    /*max_batch_rows=*/4);
  ASSERT_TRUE(fx.ingress->Start().ok());
  Codec codec(StreamSchema());

  // Land one client on each shard. Routing is by accepted-fd modulo, and
  // each attempt allocates exactly two fds (client + accepted), so the
  // accepted fd's parity — hence the shard — repeats; a held spacer fd per
  // duplicate shifts the allocation by one and flips the next routing.
  std::vector<std::optional<TcpStream>> clients(2);
  std::vector<TcpStream> parked;  // keeps fds distinct while hunting
  std::vector<int> spacers;
  for (int attempts = 0; attempts < 32; ++attempts) {
    auto before = ShardConnSnapshot(fx);
    auto conn = TcpStream::Connect("127.0.0.1", fx.ingress->port());
    ASSERT_TRUE(conn.ok());
    int shard = ShardOf(fx, before);
    ASSERT_GE(shard, 0) << "connection never routed";
    if (!clients[shard].has_value()) {
      clients[shard].emplace(std::move(*conn));
    } else {
      parked.push_back(std::move(*conn));  // duplicate shard; hold the fd
      if (int fd = ::dup(0); fd >= 0) spacers.push_back(fd);
    }
    if (clients[0].has_value() && clients[1].has_value()) break;
  }
  ASSERT_TRUE(clients[0].has_value() && clients[1].has_value())
      << "could not place a client on each shard";
  for (int fd : spacers) ::close(fd);
  parked.clear();

  // Client 0 floods shard 0 past its basket capacity with nobody draining:
  // that shard alone must engage backpressure.
  std::string flood = codec.EncodeSchemaHeader() + "\n";
  for (int i = 0; i < 64; ++i) flood += std::to_string(i) + "|1\n";
  ASSERT_TRUE(clients[0]->WriteAll(flood).ok());
  for (int i = 0; i < 5000 && !fx.ingress->shard_stats(0).backpressured; ++i) {
    fx.clock->SleepFor(1000);
  }
  ASSERT_TRUE(fx.ingress->shard_stats(0).backpressured);
  EXPECT_FALSE(fx.ingress->shard_stats(1).backpressured);

  // The sibling shard still accepts a full stream while shard 0 is wedged.
  const uint64_t shard1_before = fx.ingress->shard_stats(1).tuples;
  ASSERT_TRUE(clients[1]
                  ->WriteAll(codec.EncodeSchemaHeader() +
                             "\n100|1\n101|1\n102|1\n")
                  .ok());
  for (int i = 0;
       i < 5000 && fx.ingress->shard_stats(1).tuples < shard1_before + 3;
       ++i) {
    fx.clock->SleepFor(1000);
  }
  EXPECT_EQ(fx.ingress->shard_stats(1).tuples, shard1_before + 3);
  EXPECT_TRUE(fx.ingress->shard_stats(0).backpressured);

  // Draining shard 0's basket releases only its valve; every flooded tuple
  // eventually lands (push-back, never drop).
  ASSERT_TRUE(clients[0]->ShutdownWrite().ok());
  ASSERT_TRUE(clients[1]->ShutdownWrite().ok());
  uint64_t taken = 0;
  for (int i = 0; i < 10000 && fx.ingress->shard_stats(0).tuples < 64; ++i) {
    taken += fx.baskets[0]->TakeAll().num_rows();
    fx.clock->SleepFor(1000);
  }
  taken += fx.baskets[0]->TakeAll().num_rows();
  EXPECT_EQ(fx.ingress->shard_stats(0).tuples, 64u);
  EXPECT_EQ(taken, 64u);
  EXPECT_EQ(fx.ingress->tuples_dropped(), 0u);
  EXPECT_GE(fx.ingress->shard_stats(0).backpressure_engagements, 1u);
  EXPECT_EQ(fx.ingress->shard_stats(1).backpressure_engagements, 0u);
  fx.ingress->Stop();
}

// Scrapes "SEQ" through a fresh connection; the shard answering is
// whichever the new fd hashes to.
int64_t ShardedScrapeSeq(uint16_t port) {
  auto conn = TcpStream::Connect("127.0.0.1", port);
  if (!conn.ok()) return -1;
  if (!conn->WriteAll("SEQ\n").ok()) return -1;
  auto reply = conn->ReadLine();
  if (!reply.ok() || reply->rfind("SEQ ", 0) != 0) return -1;
  return std::atoll(reply->c_str() + 4);
}

TEST(ShardedGatewayTest, SeqResumeConsistentAcrossShardRehash) {
  const std::string log_path =
      (std::filesystem::temp_directory_path() /
       ("sharded_seq_" + std::to_string(::getpid()) + ".log"))
          .string();
  std::remove(log_path.c_str());
  auto log = storage::IngestLog::Open(log_path, storage::FsyncPolicy::kNone);
  ASSERT_TRUE(log.ok());

  ShardedFixture fx(/*shards=*/2);
  fx.ingress->EnableIngestLog(log->get());
  ASSERT_TRUE(fx.ingress->Start().ok());

  constexpr uint64_t kTuples = 40;
  Sensor::Options opts;
  opts.num_tuples = kTuples;
  ASSERT_TRUE(
      Sensor::Run("127.0.0.1", fx.ingress->port(), opts, fx.clock).ok());
  ASSERT_TRUE(fx.WaitFinished());
  ASSERT_EQ(fx.ingress->tuples_received(), kTuples);

  // Each scrape opens a fresh connection, so consecutive probes hash to
  // different shards (ascending fds, 2 shards). Every one must report the
  // logical stream total, not whichever shard's slice it landed on.
  for (int probe = 0; probe < 4; ++probe) {
    EXPECT_EQ(ShardedScrapeSeq(fx.ingress->port()),
              static_cast<int64_t>(kTuples))
        << "probe " << probe << " saw a single shard's slice";
  }
  fx.ingress->Stop();
  std::remove(log_path.c_str());
}

// The STATS reply must arrive complete even when the scraper advertises a
// minimal receive window and only starts reading after a delay — the
// short-write regression on the reply path (WriteAllRidesOutFullSendBuffer
// covers the underlying EAGAIN fix).
TEST(ShardedGatewayTest, StatsScrapeCompleteThroughTinyReceiveWindow) {
  ShardedFixture fx(/*shards=*/8);
  ASSERT_TRUE(fx.ingress->Start().ok());

  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress->port());
  ASSERT_TRUE(conn.ok());
  int rcvbuf = 1;  // kernel clamps to its floor — the smallest legal window
  ::setsockopt(conn->fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  ASSERT_TRUE(conn->WriteAll("STATS\n").ok());
  SystemClock::Get()->SleepFor(100 * 1000);  // let the reply queue up

  std::string reply;
  char c;
  while (::read(conn->fd(), &c, 1) == 1) {
    reply.push_back(c);
    if (c == '\n') break;
  }
  EXPECT_EQ(reply.rfind("STATS ", 0), 0u) << reply;
  EXPECT_NE(reply.find(" shards=8 "), std::string::npos) << reply;
  // The last per-shard field made it through: nothing was truncated.
  EXPECT_NE(reply.find(" shard.7.backpressured="), std::string::npos) << reply;
  EXPECT_EQ(reply.back(), '\n');
  fx.ingress->Stop();
}

TEST(ShardedGatewayTest, StopWithIdleClientsReturnsQuickly) {
  ShardedFixture fx(/*shards=*/4);
  ASSERT_TRUE(fx.ingress->Start().ok());

  std::vector<TcpStream> idlers;
  for (int i = 0; i < 8; ++i) {
    auto conn = TcpStream::Connect("127.0.0.1", fx.ingress->port());
    ASSERT_TRUE(conn.ok());
    idlers.push_back(std::move(*conn));
  }
  for (int i = 0; i < 5000 && fx.ingress->active_connections() < 8; ++i) {
    fx.clock->SleepFor(1000);
  }
  ASSERT_EQ(fx.ingress->active_connections(), 8u);

  const auto t0 = std::chrono::steady_clock::now();
  fx.ingress->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  // Every idler was shut down, not leaked: each sees EOF.
  for (auto& idler : idlers) {
    EXPECT_FALSE(idler.ReadLine().ok());
  }
}

}  // namespace
}  // namespace datacell::net
