#include <gtest/gtest.h>

#include <thread>

#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/actuator.h"
#include "net/codec.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "net/socket.h"
#include "util/clock.h"

namespace datacell::net {
namespace {

Schema StreamSchema() { return Sensor::StreamSchema(); }

TEST(CodecTest, SchemaHeaderRoundTrip) {
  Codec codec(StreamSchema());
  std::string header = codec.EncodeSchemaHeader();
  EXPECT_EQ(header, "tag:timestamp|payload:int");
  auto schema = Codec::DecodeSchemaHeader(header);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(*schema, StreamSchema());
}

TEST(CodecTest, RowRoundTrip) {
  Schema s({{"i", DataType::kInt64},
            {"d", DataType::kDouble},
            {"b", DataType::kBool},
            {"s", DataType::kString}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(
      t.AppendRow({Value(-7), Value(2.5), Value(true), Value("hi")}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value(-7));
  EXPECT_EQ((*row)[1], Value(2.5));
  EXPECT_EQ((*row)[2], Value(true));
  EXPECT_EQ((*row)[3], Value("hi"));
}

TEST(CodecTest, NullsAndEscaping) {
  Schema s({{"a", DataType::kString}, {"b", DataType::kInt64}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("p|q\\r\nx"), Value::Null()}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->find('\n'), std::string::npos);
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value("p|q\\r\nx"));
  EXPECT_TRUE((*row)[1].is_null());
}

TEST(CodecTest, DoublePrecisionRoundTrip) {
  Schema s({{"d", DataType::kDouble}});
  Codec codec(s);
  Table t(s);
  const double v = 0.1 + 0.2;  // not exactly representable
  ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].double_value(), v);
}

TEST(CodecTest, ArityMismatchRejected) {
  Codec codec(StreamSchema());
  EXPECT_FALSE(codec.DecodeRow("1|2|3").ok());
  EXPECT_FALSE(codec.DecodeRow("1").ok());
}

TEST(CodecTest, BadFieldRejected) {
  Codec codec(StreamSchema());
  EXPECT_FALSE(codec.DecodeRow("notanint|5").ok());
  EXPECT_FALSE(codec.DecodeRow("1|notanint").ok());
}

TEST(CodecTest, EncodeTableMultipleLines) {
  Codec codec(StreamSchema());
  Table t(StreamSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(10)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value(20)}).ok());
  auto payload = codec.EncodeTable(t);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "1|10\n2|20\n");
}

TEST(SocketTest, LoopbackEcho) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto line = conn->ReadLine();
    ASSERT_TRUE(line.ok());
    ASSERT_TRUE(conn->WriteAll("echo:" + *line + "\n").ok());
  });
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->WriteAll("hello\n").ok());
  auto reply = client->ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:hello");
  server.join();
}

TEST(SocketTest, ReadLineEof) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->WriteAll("only\n").ok());
    // close without more data
  });
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto l1 = client->ReadLine();
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(*l1, "only");
  auto l2 = client->ReadLine();
  EXPECT_EQ(l2.status().code(), StatusCode::kNotFound);  // clean EOF
  server.join();
}

TEST(EndToEndTest, SensorThroughKernelToActuator) {
  // sensor -> TcpIngress -> basket -> factory(select *) -> out basket ->
  // emitter(TcpEgress) -> actuator; the full §6.1 pipeline on loopback.
  SystemClock* clock = SystemClock::Get();

  core::ReceptorPtr receptor = std::make_shared<core::Receptor>("r");
  auto in = std::make_shared<core::Basket>("in", StreamSchema());
  receptor->AddOutput(in);
  auto out = std::make_shared<core::Basket>("out", in->schema(), false);

  auto factory = std::make_shared<core::Factory>(
      "q", [out](core::FactoryContext& ctx) -> Status {
        Table batch = ctx.input(0).TakeAll();
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(batch, ctx.now()));
        (void)n;
        return Status::OK();
      });
  factory->AddInput(in);
  factory->AddOutput(out);

  Actuator actuator(clock);
  ASSERT_TRUE(actuator.Start().ok());

  auto egress = TcpEgress::Connect("127.0.0.1", actuator.port());
  ASSERT_TRUE(egress.ok());
  auto emitter =
      std::make_shared<core::Emitter>("e", (*egress)->MakeSink());
  emitter->AddInput(out);

  TcpIngress ingress(receptor, Codec(StreamSchema()), clock);
  ASSERT_TRUE(ingress.Start().ok());

  core::Scheduler sched(clock);
  sched.Register(factory);
  sched.Register(emitter);
  ASSERT_TRUE(sched.Start().ok());

  Sensor::Options opts;
  opts.num_tuples = 500;
  opts.tuples_per_write = 50;
  std::thread sensor([&] {
    ASSERT_TRUE(Sensor::Run("127.0.0.1", ingress.port(), opts, clock).ok());
  });
  sensor.join();

  // Wait until the kernel drained everything.
  for (int i = 0; i < 2000 && actuator.stats().tuples < 500; ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  ASSERT_TRUE((*egress)->Finish().ok());
  actuator.WaitFinished();

  auto stats = actuator.stats();
  EXPECT_EQ(stats.tuples, 500u);
  EXPECT_EQ(ingress.tuples_received(), 500u);
  EXPECT_GT(stats.MeanLatency(), 0.0);
  EXPECT_GE(stats.Elapsed(), 0);
}

TEST(EgressTest, SchemaHeaderWrittenExactlyOnce) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::vector<std::string> lines;
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    while (true) {
      auto line = conn->ReadLine();
      if (!line.ok()) break;
      lines.push_back(*line);
    }
  });
  auto egress = TcpEgress::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(egress.ok());
  core::Emitter::Sink sink = (*egress)->MakeSink();
  Table batch(StreamSchema());
  ASSERT_TRUE(batch.AppendRow({Value(int64_t{1}), Value(10)}).ok());
  ASSERT_TRUE(sink(batch).ok());
  ASSERT_TRUE(sink(batch).ok());  // second batch: no second header
  ASSERT_TRUE((*egress)->Finish().ok());
  server.join();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "tag:timestamp|payload:int");
  EXPECT_EQ(lines[1], "1|10");
  EXPECT_EQ(lines[2], "1|10");
}

TEST(EndToEndTest, SensorDirectToActuator) {
  // The paper's "without the kernel" baseline.
  SystemClock* clock = SystemClock::Get();
  Actuator actuator(clock);
  ASSERT_TRUE(actuator.Start().ok());
  Sensor::Options opts;
  opts.num_tuples = 300;
  opts.tuples_per_write = 30;
  ASSERT_TRUE(Sensor::Run("127.0.0.1", actuator.port(), opts, clock).ok());
  actuator.WaitFinished();
  EXPECT_EQ(actuator.stats().tuples, 300u);
}

}  // namespace
}  // namespace datacell::net
