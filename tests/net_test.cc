#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/actuator.h"
#include "net/codec.h"
#include "net/gateway.h"
#include "net/sensor.h"
#include "net/socket.h"
#include "util/clock.h"

namespace datacell::net {
namespace {

Schema StreamSchema() { return Sensor::StreamSchema(); }

TEST(CodecTest, SchemaHeaderRoundTrip) {
  Codec codec(StreamSchema());
  std::string header = codec.EncodeSchemaHeader();
  EXPECT_EQ(header, "tag:timestamp|payload:int");
  auto schema = Codec::DecodeSchemaHeader(header);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(*schema, StreamSchema());
}

TEST(CodecTest, RowRoundTrip) {
  Schema s({{"i", DataType::kInt64},
            {"d", DataType::kDouble},
            {"b", DataType::kBool},
            {"s", DataType::kString}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(
      t.AppendRow({Value(-7), Value(2.5), Value(true), Value("hi")}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value(-7));
  EXPECT_EQ((*row)[1], Value(2.5));
  EXPECT_EQ((*row)[2], Value(true));
  EXPECT_EQ((*row)[3], Value("hi"));
}

TEST(CodecTest, NullsAndEscaping) {
  Schema s({{"a", DataType::kString}, {"b", DataType::kInt64}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("p|q\\r\nx"), Value::Null()}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->find('\n'), std::string::npos);
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value("p|q\\r\nx"));
  EXPECT_TRUE((*row)[1].is_null());
}

TEST(CodecTest, DoublePrecisionRoundTrip) {
  Schema s({{"d", DataType::kDouble}});
  Codec codec(s);
  Table t(s);
  const double v = 0.1 + 0.2;  // not exactly representable
  ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].double_value(), v);
}

TEST(CodecTest, ArityMismatchRejected) {
  Codec codec(StreamSchema());
  EXPECT_FALSE(codec.DecodeRow("1|2|3").ok());
  EXPECT_FALSE(codec.DecodeRow("1").ok());
}

TEST(CodecTest, BadFieldRejected) {
  Codec codec(StreamSchema());
  EXPECT_FALSE(codec.DecodeRow("notanint|5").ok());
  EXPECT_FALSE(codec.DecodeRow("1|notanint").ok());
}

TEST(CodecTest, EncodeTableMultipleLines) {
  Codec codec(StreamSchema());
  Table t(StreamSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(10)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value(20)}).ok());
  auto payload = codec.EncodeTable(t);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "1|10\n2|20\n");
}

TEST(SocketTest, LoopbackEcho) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    auto line = conn->ReadLine();
    ASSERT_TRUE(line.ok());
    ASSERT_TRUE(conn->WriteAll("echo:" + *line + "\n").ok());
  });
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->WriteAll("hello\n").ok());
  auto reply = client->ReadLine();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, "echo:hello");
  server.join();
}

TEST(SocketTest, ReadLineEof) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->WriteAll("only\n").ok());
    // close without more data
  });
  auto client = TcpStream::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  auto l1 = client->ReadLine();
  ASSERT_TRUE(l1.ok());
  EXPECT_EQ(*l1, "only");
  auto l2 = client->ReadLine();
  EXPECT_EQ(l2.status().code(), StatusCode::kNotFound);  // clean EOF
  server.join();
}

TEST(EndToEndTest, SensorThroughKernelToActuator) {
  // sensor -> TcpIngress -> basket -> factory(select *) -> out basket ->
  // emitter(TcpEgress) -> actuator; the full §6.1 pipeline on loopback.
  SystemClock* clock = SystemClock::Get();

  core::ReceptorPtr receptor = std::make_shared<core::Receptor>("r");
  auto in = std::make_shared<core::Basket>("in", StreamSchema());
  receptor->AddOutput(in);
  auto out = std::make_shared<core::Basket>("out", in->schema(), false);

  auto factory = std::make_shared<core::Factory>(
      "q", [out](core::FactoryContext& ctx) -> Status {
        Table batch = ctx.input(0).TakeAll();
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(batch, ctx.now()));
        (void)n;
        return Status::OK();
      });
  factory->AddInput(in);
  factory->AddOutput(out);

  Actuator actuator(clock);
  ASSERT_TRUE(actuator.Start().ok());

  auto egress = TcpEgress::Connect("127.0.0.1", actuator.port());
  ASSERT_TRUE(egress.ok());
  auto emitter =
      std::make_shared<core::Emitter>("e", (*egress)->MakeSink());
  emitter->AddInput(out);

  TcpIngress ingress(receptor, Codec(StreamSchema()), clock);
  ASSERT_TRUE(ingress.Start().ok());

  core::Scheduler sched(clock);
  sched.Register(factory);
  sched.Register(emitter);
  ASSERT_TRUE(sched.Start().ok());

  Sensor::Options opts;
  opts.num_tuples = 500;
  opts.tuples_per_write = 50;
  std::thread sensor([&] {
    ASSERT_TRUE(Sensor::Run("127.0.0.1", ingress.port(), opts, clock).ok());
  });
  sensor.join();

  // Wait until the kernel drained everything.
  for (int i = 0; i < 2000 && actuator.stats().tuples < 500; ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  ASSERT_TRUE((*egress)->Finish().ok());
  actuator.WaitFinished();

  auto stats = actuator.stats();
  EXPECT_EQ(stats.tuples, 500u);
  EXPECT_EQ(ingress.tuples_received(), 500u);
  EXPECT_GT(stats.MeanLatency(), 0.0);
  EXPECT_GE(stats.Elapsed(), 0);
}

TEST(EgressTest, SchemaHeaderWrittenExactlyOnce) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  std::vector<std::string> lines;
  std::thread server([&] {
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    while (true) {
      auto line = conn->ReadLine();
      if (!line.ok()) break;
      lines.push_back(*line);
    }
  });
  auto egress = TcpEgress::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(egress.ok());
  core::Emitter::Sink sink = (*egress)->MakeSink();
  Table batch(StreamSchema());
  ASSERT_TRUE(batch.AppendRow({Value(int64_t{1}), Value(10)}).ok());
  ASSERT_TRUE(sink(batch).ok());
  ASSERT_TRUE(sink(batch).ok());  // second batch: no second header
  ASSERT_TRUE((*egress)->Finish().ok());
  server.join();
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "tag:timestamp|payload:int");
  EXPECT_EQ(lines[1], "1|10");
  EXPECT_EQ(lines[2], "1|10");
}

TEST(EndToEndTest, SensorDirectToActuator) {
  // The paper's "without the kernel" baseline.
  SystemClock* clock = SystemClock::Get();
  Actuator actuator(clock);
  ASSERT_TRUE(actuator.Start().ok());
  Sensor::Options opts;
  opts.num_tuples = 300;
  opts.tuples_per_write = 30;
  ASSERT_TRUE(Sensor::Run("127.0.0.1", actuator.port(), opts, clock).ok());
  actuator.WaitFinished();
  EXPECT_EQ(actuator.stats().tuples, 300u);
}

// ---------------------------------------------------------------------------
// Codec correctness fixes
// ---------------------------------------------------------------------------

TEST(CodecTest, LiteralNullStringIsNotSqlNull) {
  Schema s({{"a", DataType::kString}, {"b", DataType::kString}});
  Codec codec(s);
  Table t(s);
  ASSERT_TRUE(t.AppendRow({Value("NULL"), Value::Null()}).ok());
  auto line = codec.EncodeRow(t, 0);
  ASSERT_TRUE(line.ok());
  auto row = codec.DecodeRow(*line);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value("NULL"));  // the string survives as a string
  EXPECT_TRUE((*row)[1].is_null());     // the null survives as a null
}

TEST(CodecTest, NullMarkerLookalikeStringsRoundTrip) {
  // Strings that collide with the wire spelling of null must not decode as
  // null: "\N" (the marker itself), "N", and "NULL" are all plain values.
  Schema s({{"a", DataType::kString}});
  Codec codec(s);
  for (const std::string v : {"\\N", "N", "NULL", "\\NULL", "\\n"}) {
    Table t(s);
    ASSERT_TRUE(t.AppendRow({Value(v)}).ok());
    auto line = codec.EncodeRow(t, 0);
    ASSERT_TRUE(line.ok());
    auto row = codec.DecodeRow(*line);
    ASSERT_TRUE(row.ok()) << v;
    EXPECT_EQ((*row)[0], Value(v));
  }
}

TEST(CodecTest, BareNullWordStillNullForNonStringFields) {
  // Backward compatibility with pre-\N encoders, where no legal value
  // collides with the word.
  Codec codec(StreamSchema());
  auto row = codec.DecodeRow("NULL|7");
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_null());
  EXPECT_EQ((*row)[1], Value(7));
}

TEST(CodecTest, SchemaHeaderEscapedFieldNames) {
  Schema s({{"pipe|name", DataType::kInt64},
            {"back\\slash", DataType::kString},
            {"plain", DataType::kDouble}});
  Codec codec(s);
  std::string header = codec.EncodeSchemaHeader();
  auto decoded = Codec::DecodeSchemaHeader(header);
  ASSERT_TRUE(decoded.ok()) << header;
  EXPECT_EQ(*decoded, s);
}

TEST(CodecTest, SchemaHeaderEmptyFieldNameRejected) {
  EXPECT_FALSE(Codec::DecodeSchemaHeader(":int|b:int").ok());
  EXPECT_FALSE(Codec::DecodeSchemaHeader("a:int|:string").ok());
}

// ---------------------------------------------------------------------------
// Gateway: multi-client fan-in, fault injection, flow control
// ---------------------------------------------------------------------------

struct GatewayFixture {
  explicit GatewayFixture(size_t max_batch_rows = 1024)
      : clock(SystemClock::Get()),
        basket(std::make_shared<core::Basket>("in", StreamSchema())),
        receptor(std::make_shared<core::Receptor>("r")),
        ingress(receptor, Codec(StreamSchema()), SystemClock::Get(),
                max_batch_rows) {
    receptor->AddOutput(basket);
  }

  bool WaitFinished(int timeout_ms = 5000) {
    for (int i = 0; i < timeout_ms && !ingress.finished(); ++i) {
      clock->SleepFor(1000);
    }
    return ingress.finished();
  }

  SystemClock* clock;
  core::BasketPtr basket;
  core::ReceptorPtr receptor;
  TcpIngress ingress;
};

TEST(GatewayTest, MultiClientFanIn) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());

  constexpr int kClients = 8;
  constexpr uint64_t kPerClient = 200;
  std::vector<std::thread> sensors;
  for (int c = 0; c < kClients; ++c) {
    sensors.emplace_back([&, c] {
      Sensor::Options opts;
      opts.num_tuples = kPerClient;
      opts.tuples_per_write = 17;
      opts.seed = static_cast<uint64_t>(c) + 1;
      ASSERT_TRUE(
          Sensor::Run("127.0.0.1", fx.ingress.port(), opts, fx.clock).ok());
    });
  }
  for (auto& t : sensors) t.join();
  ASSERT_TRUE(fx.WaitFinished());

  EXPECT_EQ(fx.ingress.connections_accepted(), kClients);
  EXPECT_EQ(fx.ingress.tuples_received(), kClients * kPerClient);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 0u);
  EXPECT_EQ(fx.basket->size(), kClients * kPerClient);
  fx.ingress.Stop();
}

TEST(GatewayTest, StopWithConnectedIdleClientReturnsQuickly) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());

  // A sensor that connects and then says nothing — the regression that used
  // to leave Stop() hanging in join() behind a blocked ReadLine.
  auto idle = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(idle.ok());
  for (int i = 0; i < 2000 && fx.ingress.active_connections() == 0; ++i) {
    fx.clock->SleepFor(1000);
  }
  ASSERT_EQ(fx.ingress.active_connections(), 1u);

  const auto t0 = std::chrono::steady_clock::now();
  fx.ingress.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(1));
  // The accepted stream was shut down, not leaked: the idle client sees EOF.
  auto line = idle->ReadLine();
  EXPECT_FALSE(line.ok());
}

TEST(GatewayTest, MalformedBurstCountedNotSilent) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  // One write so the whole burst lands in the drain loop together; valid
  // and malformed lines interleave.
  ASSERT_TRUE(conn->WriteAll(codec.EncodeSchemaHeader() +
                             "\n1|10\ngarbage\n2|20\n3|not_an_int\n4|40\n"
                             "5|\n6|60\n")
                  .ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.tuples_received(), 4u);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 3u);
  EXPECT_EQ(fx.basket->size(), 4u);
  fx.ingress.Stop();
}

TEST(GatewayTest, MidStreamDisconnectKeepsServingOthers) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  Codec codec(StreamSchema());

  // Client 1 dies mid-stream with a hard reset (SO_LINGER 0 => RST).
  {
    auto doomed = TcpStream::Connect("127.0.0.1", fx.ingress.port());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(
        doomed->WriteAll(codec.EncodeSchemaHeader() + "\n1|10\n2|2").ok());
    struct linger lg = {1, 0};
    ::setsockopt(doomed->fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    doomed->Close();
  }

  // Client 2 streams normally and must be unaffected.
  auto ok_client = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(ok_client.ok());
  ASSERT_TRUE(ok_client
                  ->WriteAll(codec.EncodeSchemaHeader() +
                             "\n7|70\n8|80\n9|90\n")
                  .ok());
  ASSERT_TRUE(ok_client->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  // Whatever the reset connection managed to deliver is kept; client 2's
  // three tuples all arrive.
  EXPECT_GE(fx.ingress.tuples_received(), 3u);
  EXPECT_GE(fx.basket->size(), 3u);
  Table contents = fx.basket->Peek();
  int from_ok_client = 0;
  for (size_t i = 0; i < contents.num_rows(); ++i) {
    const int64_t payload = contents.GetRow(i)[1].int_value();
    if (payload == 70 || payload == 80 || payload == 90) ++from_ok_client;
  }
  EXPECT_EQ(from_ok_client, 3);
  fx.ingress.Stop();
}

TEST(GatewayTest, TornCompleteLineAtEofDelivered) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  // The final line is missing its newline; it is still a whole tuple.
  ASSERT_TRUE(
      conn->WriteAll(codec.EncodeSchemaHeader() + "\n5|50\n7|7").ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.tuples_received(), 2u);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 0u);
  fx.ingress.Stop();
}

TEST(GatewayTest, TornPartialLineAtEofCountedDropped) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  // The connection tears in the middle of the second tuple's payload.
  ASSERT_TRUE(
      conn->WriteAll(codec.EncodeSchemaHeader() + "\n5|50\n8|").ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.tuples_received(), 1u);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 1u);
  fx.ingress.Stop();
}

TEST(GatewayTest, BackpressureEngagesAndReleasesWithoutLoss) {
  GatewayFixture fx(/*max_batch_rows=*/4);
  fx.basket->SetCapacity(/*high_watermark=*/8, /*low_watermark=*/4);
  ASSERT_TRUE(fx.ingress.Start().ok());

  constexpr uint64_t kTuples = 50;
  auto conn = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(conn.ok());
  Codec codec(StreamSchema());
  std::string payload = codec.EncodeSchemaHeader() + "\n";
  for (uint64_t i = 0; i < kTuples; ++i) {
    payload += std::to_string(i) + "|" + std::to_string(i * 10) + "\n";
  }
  ASSERT_TRUE(conn->WriteAll(payload).ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());

  // With no consumer the valve must close at the high watermark: the
  // basket holds at most 8 rows and the gateway stops reading.
  for (int i = 0; i < 5000 && !fx.ingress.backpressured(); ++i) {
    fx.clock->SleepFor(1000);
  }
  EXPECT_TRUE(fx.ingress.backpressured());
  EXPECT_LE(fx.basket->size(), 8u);
  EXPECT_LT(fx.ingress.tuples_received(), kTuples);

  // Draining past the low watermark releases it; every tuple eventually
  // arrives and none were dropped anywhere (push-back, not drop).
  uint64_t taken = 0;
  for (int i = 0; i < 5000 && !fx.ingress.finished(); ++i) {
    taken += fx.basket->TakeAll().num_rows();
    fx.clock->SleepFor(1000);
  }
  ASSERT_TRUE(fx.ingress.finished());
  taken += fx.basket->TakeAll().num_rows();

  EXPECT_EQ(taken, kTuples);
  EXPECT_EQ(fx.ingress.tuples_received(), kTuples);
  EXPECT_EQ(fx.ingress.tuples_dropped(), 0u);
  EXPECT_EQ(fx.basket->stats().dropped, 0u);
  EXPECT_LE(fx.basket->stats().peak_rows, 8u);
  EXPECT_GE(fx.ingress.backpressure_engagements(), 1u);
  EXPECT_FALSE(fx.ingress.backpressured());
  fx.ingress.Stop();
}

TEST(GatewayTest, HandshakeFailureDropsOnlyThatConnection) {
  GatewayFixture fx;
  ASSERT_TRUE(fx.ingress.Start().ok());
  Codec codec(StreamSchema());

  auto bad = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(bad->WriteAll("wrong:int|schema:string\n1|x\n").ok());
  ASSERT_TRUE(bad->ShutdownWrite().ok());

  auto good = TcpStream::Connect("127.0.0.1", fx.ingress.port());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(
      good->WriteAll(codec.EncodeSchemaHeader() + "\n1|10\n2|20\n").ok());
  ASSERT_TRUE(good->ShutdownWrite().ok());

  ASSERT_TRUE(fx.WaitFinished());
  EXPECT_EQ(fx.ingress.connections_accepted(), 2u);
  EXPECT_EQ(fx.ingress.tuples_received(), 2u);
  EXPECT_EQ(fx.basket->size(), 2u);
  fx.ingress.Stop();
}

}  // namespace
}  // namespace datacell::net
