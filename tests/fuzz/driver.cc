/// Standalone driver for the DataCell fuzz harnesses.
///
/// Every harness defines the libFuzzer entry point
///
///   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
///
/// When the toolchain has libFuzzer (clang, -DDATACELL_FUZZ_LIBFUZZER=ON),
/// this file is compiled out and libFuzzer provides main(). Everywhere else
/// (the GCC CI jobs and the default build) this driver supplies a
/// compatible main() with two modes:
///
///   fuzz_x CORPUS_DIR [FILE...]        replay every input once (regression
///                                      mode — this is what ctest runs)
///   fuzz_x -max_total_time=60 CORPUS   deterministic mutational fuzzing
///                                      seeded from the corpus until the
///                                      time budget expires
///
/// Flags (libFuzzer-compatible spellings):
///   -max_total_time=N  fuzz for N seconds (0 = replay only, the default)
///   -runs=N            stop after N mutated executions
///   -seed=N            PRNG seed (default 1; runs are reproducible)
///   -max_len=N         cap generated inputs at N bytes (default 65536)
///
/// On a crash (signal or sanitizer abort) the input being executed is
/// written to crash-<pid>.bin in the working directory so it can be
/// minimized and committed to tests/fuzz/corpus/ as a regression input.
/// Unknown '-' flags are ignored so libFuzzer invocations stay copyable.

#ifndef DATACELL_HAVE_LIBFUZZER

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

// GCC's libsanitizer exports this when ASan/UBSan is linked; the weak
// declaration keeps plain builds linking.
extern "C" void __sanitizer_set_death_callback(void (*callback)(void))
    __attribute__((weak));

namespace {

// The input currently inside LLVMFuzzerTestOneInput, for the crash dump.
// Plain pointers: the handlers run async-signal context.
const uint8_t* g_cur_data = nullptr;
size_t g_cur_size = 0;
char g_crash_path[256];

void DumpCurrentInput() {
  if (g_cur_data == nullptr) return;
  int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  size_t done = 0;
  while (done < g_cur_size) {
    ssize_t n = ::write(fd, g_cur_data + done, g_cur_size - done);
    if (n <= 0) break;
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  const char msg[] = "\n== crashing input written to ";
  ssize_t w = ::write(2, msg, sizeof(msg) - 1);
  w = ::write(2, g_crash_path, ::strlen(g_crash_path));
  w = ::write(2, " ==\n", 4);
  (void)w;
}

void CrashSignalHandler(int sig) {
  DumpCurrentInput();
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void InstallCrashDumper() {
  ::snprintf(g_crash_path, sizeof(g_crash_path), "crash-%d.bin",
             static_cast<int>(::getpid()));
  for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
    ::signal(sig, CrashSignalHandler);
  }
  if (__sanitizer_set_death_callback != nullptr) {
    __sanitizer_set_death_callback(DumpCurrentInput);
  }
}

int RunOne(const std::vector<uint8_t>& input) {
  g_cur_data = input.data();
  g_cur_size = input.size();
  int rc = LLVMFuzzerTestOneInput(input.data(), input.size());
  g_cur_data = nullptr;
  g_cur_size = 0;
  return rc;
}

// xorshift128+: fast, deterministic across platforms.
struct Rng {
  uint64_t s0, s1;
  explicit Rng(uint64_t seed) : s0(seed ^ 0x9e3779b97f4a7c15ULL), s1(seed) {
    for (int i = 0; i < 8; ++i) Next();
  }
  uint64_t Next() {
    uint64_t x = s0;
    const uint64_t y = s1;
    s0 = y;
    x ^= x << 23;
    s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1 + y;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
};

// One random structural edit. The menu mirrors libFuzzer's basic mutators:
// bit/byte flips, inserts, erases, block duplication, interesting bytes,
// and cross-seed splicing (structure transfer between corpus inputs).
void Mutate(std::vector<uint8_t>* input, const std::vector<std::vector<uint8_t>>& corpus,
            size_t max_len, Rng* rng) {
  static const uint8_t kInteresting[] = {0,    1,    0x7f, 0x80, 0xff,
                                         '\n', '|',  '\\', ':',  ';',
                                         ' ',  '\'', '"',  '0',  '9'};
  std::vector<uint8_t>& in = *input;
  switch (rng->Below(8)) {
    case 0:  // flip a bit
      if (!in.empty()) in[rng->Below(in.size())] ^= 1u << rng->Below(8);
      break;
    case 1:  // random byte
      if (!in.empty()) {
        in[rng->Below(in.size())] = static_cast<uint8_t>(rng->Next());
      }
      break;
    case 2:  // interesting byte
      if (!in.empty()) {
        in[rng->Below(in.size())] =
            kInteresting[rng->Below(sizeof(kInteresting))];
      }
      break;
    case 3:  // insert a byte
      if (in.size() < max_len) {
        in.insert(in.begin() + static_cast<long>(rng->Below(in.size() + 1)),
                  static_cast<uint8_t>(rng->Next()));
      }
      break;
    case 4:  // erase a run
      if (!in.empty()) {
        size_t at = rng->Below(in.size());
        size_t n = 1 + rng->Below(in.size() - at);
        in.erase(in.begin() + static_cast<long>(at),
                 in.begin() + static_cast<long>(at + n));
      }
      break;
    case 5: {  // duplicate a block
      if (!in.empty() && in.size() < max_len) {
        size_t at = rng->Below(in.size());
        size_t n = 1 + rng->Below(std::min(in.size() - at, max_len - in.size()));
        std::vector<uint8_t> block(in.begin() + static_cast<long>(at),
                                   in.begin() + static_cast<long>(at + n));
        in.insert(in.begin() + static_cast<long>(rng->Below(in.size() + 1)),
                  block.begin(), block.end());
      }
      break;
    }
    case 6: {  // splice with another corpus input
      if (!corpus.empty()) {
        const std::vector<uint8_t>& other = corpus[rng->Below(corpus.size())];
        if (!other.empty()) {
          size_t keep = rng->Below(in.size() + 1);
          size_t from = rng->Below(other.size());
          in.resize(keep);
          in.insert(in.end(), other.begin() + static_cast<long>(from),
                    other.end());
          if (in.size() > max_len) in.resize(max_len);
        }
      }
      break;
    }
    case 7:  // truncate
      if (!in.empty()) in.resize(rng->Below(in.size()));
      break;
  }
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  FILE* f = ::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = ::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  ::fclose(f);
  return true;
}

void CollectInputs(const std::string& path, std::vector<std::string>* files) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    ::fprintf(stderr, "fuzz driver: cannot stat '%s'\n", path.c_str());
    return;
  }
  if (!S_ISDIR(st.st_mode)) {
    files->push_back(path);
    return;
  }
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return;
  while (dirent* e = ::readdir(dir)) {
    if (e->d_name[0] == '.') continue;
    CollectInputs(path + "/" + e->d_name, files);
  }
  ::closedir(dir);
}

}  // namespace

int main(int argc, char** argv) {
  InstallCrashDumper();

  uint64_t seed = 1;
  long max_total_time = 0;
  long runs = -1;
  size_t max_len = 65536;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0 ||
        arg.rfind("-seconds=", 0) == 0) {
      max_total_time = ::atol(arg.c_str() + arg.find('=') + 1);
    } else if (arg.rfind("-runs=", 0) == 0) {
      runs = ::atol(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<uint64_t>(::atoll(arg.c_str() + 6));
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<size_t>(::atoll(arg.c_str() + 9));
    } else if (!arg.empty() && arg[0] == '-') {
      // Unknown libFuzzer flag: ignore, so invocations stay copyable.
    } else {
      paths.push_back(arg);
    }
  }

  // Load and replay the corpus. Replay alone is the ctest regression mode:
  // every committed crash reproducer runs on every build.
  std::vector<std::string> files;
  for (const std::string& p : paths) CollectInputs(p, &files);
  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& f : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFile(f, &bytes)) {
      ::fprintf(stderr, "fuzz driver: cannot read '%s'\n", f.c_str());
      return 2;
    }
    ::fprintf(stderr, "replay %s (%zu bytes)\n", f.c_str(), bytes.size());
    RunOne(bytes);
    corpus.push_back(std::move(bytes));
  }
  ::fprintf(stderr, "fuzz driver: replayed %zu corpus inputs\n",
            corpus.size());
  if (max_total_time <= 0 && runs <= 0) return 0;

  if (corpus.empty()) corpus.push_back({});
  Rng rng(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  long executed = 0;
  std::vector<uint8_t> input;
  while (true) {
    if (runs >= 0 && executed >= runs) break;
    if (max_total_time > 0 && (executed & 0x3f) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    if (runs < 0 && max_total_time <= 0) break;
    input = corpus[rng.Below(corpus.size())];
    const size_t edits = 1 + rng.Below(8);
    for (size_t e = 0; e < edits; ++e) Mutate(&input, corpus, max_len, &rng);
    RunOne(input);
    ++executed;
  }
  ::fprintf(stderr, "fuzz driver: %ld mutated executions, no crashes\n",
            executed);
  return 0;
}

#endif  // !DATACELL_HAVE_LIBFUZZER
