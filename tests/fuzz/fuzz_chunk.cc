/// Fuzz harness: storage/chunk binary deserialization.
///
/// Spill pages are the one binary (non-textual) decoder in the tree.
/// DeserializeChunk must reject arbitrary bytes with ParseError — without
/// over-allocating from attacker-controlled row counts — and anything it
/// does accept must survive a serialize/deserialize round trip
/// byte-identically.
///
/// Input layout: byte 0 = field count (mod 9), bytes 1..n = type tags
/// (mod 5), remainder = the chunk payload. Deriving the schema from the
/// input lets the fuzzer steer past the arity/type-tag checks into the
/// per-column decoders.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "column/table.h"
#include "storage/chunk.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;

  const size_t num_fields = data[0] % 9;  // 0..8 columns
  if (size < 1 + num_fields) return 0;
  datacell::Schema schema;
  for (size_t i = 0; i < num_fields; ++i) {
    const auto type = static_cast<datacell::DataType>(data[1 + i] % 5);
    if (datacell::Status st =
            schema.AddField({"f" + std::to_string(i), type});
        !st.ok()) {
      return 0;  // unreachable: generated names are unique
    }
  }
  const char* payload = reinterpret_cast<const char*>(data) + 1 + num_fields;
  const size_t payload_len = size - 1 - num_fields;

  datacell::Result<datacell::Table> table =
      datacell::storage::DeserializeChunk(schema, payload, payload_len);
  if (!table.ok()) return 0;

  // Round trip: serialize the accepted table and deserialize it again. The
  // two serialized forms must be byte-identical (fixpoint) and agree on
  // shape — anything else means the codec pair loses information.
  std::string first;
  if (datacell::Status st =
          datacell::storage::SerializeChunk(*table, &first);
      !st.ok()) {
    std::fprintf(stderr, "fuzz_chunk: reserialize failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  datacell::Result<datacell::Table> again = datacell::storage::DeserializeChunk(
      schema, first.data(), first.size());
  if (!again.ok()) {
    std::fprintf(stderr, "fuzz_chunk: round trip rejected own output: %s\n",
                 again.status().ToString().c_str());
    std::abort();
  }
  std::string second;
  if (datacell::Status st =
          datacell::storage::SerializeChunk(*again, &second);
      !st.ok()) {
    std::fprintf(stderr, "fuzz_chunk: second serialize failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  if (first != second || table->num_rows() != again->num_rows()) {
    std::fprintf(stderr, "fuzz_chunk: round trip not a fixpoint\n");
    std::abort();
  }
  return 0;
}
