/// Fuzz harness: gateway line framing + handshake + tuple decode.
///
/// This walks the exact path a byte arriving on the gateway socket takes:
/// LineFramer reassembly (under adversarial chunking), ParseHello on the
/// first line, then Codec::DecodeInto for the tuple lines. The framer must
/// conserve bytes — every byte fed in comes back out in exactly one line
/// or in the remainder — and the decoders must return Status, not crash.
///
/// Input layout: byte 0 seeds the chunk-size pattern so the same stream
/// replayed with different first bytes exercises different recv() splits;
/// the rest is the wire stream.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "column/table.h"
#include "net/codec.h"
#include "net/framing.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > (1 << 16)) return 0;
  const uint8_t chunk_seed = data[0];
  const char* stream = reinterpret_cast<const char*>(data) + 1;
  const size_t stream_len = size - 1;

  datacell::net::LineFramer framer;
  std::optional<datacell::net::Codec> codec;
  bool saw_hello = false;
  size_t bytes_out = 0;

  size_t pos = 0;
  uint32_t chunk_state = chunk_seed + 1u;
  while (pos < stream_len) {
    // Feed in pseudo-random 1..64 byte chunks, like a torn recv() stream.
    chunk_state = chunk_state * 1664525u + 1013904223u;
    size_t n = 1 + (chunk_state >> 16) % 64;
    if (n > stream_len - pos) n = stream_len - pos;
    framer.Append(std::string_view(stream + pos, n));
    pos += n;

    while (std::optional<std::string> line = framer.NextLine()) {
      bytes_out += line->size() + 1;  // '\n' is consumed, not returned
      if (!saw_hello) {
        saw_hello = true;
        datacell::Result<datacell::net::Hello> hello =
            datacell::net::ParseHello(*line);
        if (hello.ok() &&
            hello->kind == datacell::net::HelloKind::kSchema) {
          codec.emplace(hello->schema);
        }
      } else if (codec.has_value()) {
        datacell::Table batch(codec->schema());
        // Arbitrary tuple lines may or may not decode; both are fine.
        if (datacell::Status st = codec->DecodeInto(*line, &batch); st.ok()) {
          if (batch.num_rows() != 1) {
            std::fprintf(stderr,
                         "fuzz_gateway_framing: DecodeInto ok but %zu rows\n",
                         batch.num_rows());
            std::abort();
          }
        }
      }
    }
  }

  bytes_out += framer.TakeRemainder().size();
  if (bytes_out != stream_len) {
    std::fprintf(stderr,
                 "fuzz_gateway_framing: fed %zu bytes, recovered %zu\n",
                 stream_len, bytes_out);
    std::abort();
  }
  if (framer.buffered() != 0) {
    std::fprintf(stderr,
                 "fuzz_gateway_framing: framer still buffers %zu bytes "
                 "after TakeRemainder\n",
                 framer.buffered());
    std::abort();
  }
  return 0;
}
