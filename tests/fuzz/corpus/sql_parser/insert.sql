INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL);
INSERT INTO t SELECT a, b FROM u WHERE b <> 'z';
