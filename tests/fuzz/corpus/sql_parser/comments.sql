-- line comment
SELECT /* block */ 1 + 2 * -3, 'it''s' FROM t;
