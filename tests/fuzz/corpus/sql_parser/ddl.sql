CREATE TABLE t (a int, b string, c double, d timestamp);
CREATE BASKET s (x int, y bool);
DROP BASKET s;
DECLARE n int;
SET n = (SELECT a FROM t LIMIT 1);
