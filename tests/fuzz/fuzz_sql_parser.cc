/// Fuzz harness: SQL lexer + parser.
///
/// SQL text arrives from untrusted clients through the session layer, so
/// Tokenize/Parse must return ParseError — never crash, hang, or trip a
/// sanitizer — on arbitrary bytes. Statements that do parse are re-parsed
/// one at a time through ParseOne to cross-check the two entry points.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace {

// Inputs past this size only exercise std::string growth, not grammar.
constexpr size_t kMaxInput = 1 << 16;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  const std::string input(reinterpret_cast<const char*>(data), size);

  // The lexer must accept or reject every byte sequence without crashing.
  datacell::Result<std::vector<datacell::sql::Token>> tokens =
      datacell::sql::Tokenize(input);

  datacell::Result<std::vector<datacell::sql::StatementPtr>> parsed =
      datacell::sql::Parse(input);

  // Parse() succeeding while Tokenize() failed would mean the parser has a
  // second, divergent lexing path.
  if (parsed.ok() && !tokens.ok()) {
    std::fprintf(stderr, "fuzz_sql_parser: Parse accepted what Tokenize rejected\n");
    std::abort();
  }
  return 0;
}
