/// Fuzz harness: storage/ingest_log replay and recovery.
///
/// The ingest log is replayed at startup from whatever a crash left on
/// disk — torn tails, duplicated sequence numbers, interleaved streams,
/// corrupt records. Replay must classify every file as replayable or
/// ParseError without crashing, and Open must recover enough state that
/// the log stays appendable and the appended records replay back.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "column/table.h"
#include "storage/ingest_log.h"

namespace {

std::string WriteTempFile(const uint8_t* data, size_t size) {
  char path[] = "/tmp/dc_fuzz_ingest_XXXXXX";
  int fd = ::mkstemp(path);
  if (fd < 0) return {};
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n <= 0) {
      ::close(fd);
      ::unlink(path);
      return {};
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return path;
}

datacell::Status CountingHandler(const std::string& /*stream*/,
                                 const datacell::Schema& schema,
                                 uint64_t /*seq*/, const datacell::Row& row) {
  // The replay contract: delivered rows always match the stream schema.
  if (row.size() != schema.num_fields()) {
    std::fprintf(stderr, "fuzz_ingest_log: row arity != schema arity\n");
    std::abort();
  }
  return datacell::Status::OK();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1 << 16)) return 0;
  const std::string path = WriteTempFile(data, size);
  if (path.empty()) return 0;

  // Pass 1: replay the raw fuzzed bytes.
  const bool replayable =
      datacell::storage::ReplayIngestLog(path, CountingHandler).ok();

  // Pass 2: recovery. Open truncates a torn tail; on a file Replay accepted,
  // Open must succeed too, and the log must remain appendable.
  datacell::Result<std::unique_ptr<datacell::storage::IngestLog>> log =
      datacell::storage::IngestLog::Open(path,
                                         datacell::storage::FsyncPolicy::kNone);
  if (replayable && !log.ok()) {
    std::fprintf(stderr,
                 "fuzz_ingest_log: Replay accepted but Open rejected: %s\n",
                 log.status().ToString().c_str());
    std::abort();
  }
  if (log.ok()) {
    datacell::Schema schema;
    if (datacell::Status st =
            schema.AddField({"v", datacell::DataType::kInt64});
        !st.ok()) {
      std::abort();  // unreachable: fresh schema, unique name
    }
    datacell::Table batch(schema);
    if (datacell::Status st = batch.AppendRow({datacell::Value(int64_t{7})});
        st.ok()) {
      // The fuzzed file may already define this stream with another schema;
      // then AppendBatch correctly fails and there is nothing to ack.
      datacell::Result<std::pair<uint64_t, uint64_t>> seqs =
          (*log)->AppendBatch("__fuzz", batch);
      if (seqs.ok() && seqs->first <= seqs->second) {
        if (datacell::Status st2 = (*log)->Ack("__fuzz", seqs->first);
            !st2.ok()) {
          std::fprintf(stderr, "fuzz_ingest_log: ack of own seq failed: %s\n",
                       st2.ToString().c_str());
          std::abort();
        }
      }
    }
    log->reset();  // close before re-replaying

    // Pass 3: after recovery + append, the file must replay cleanly.
    datacell::Result<datacell::storage::ReplayReport> report =
        datacell::storage::ReplayIngestLog(path, CountingHandler);
    if (!report.ok()) {
      std::fprintf(stderr,
                   "fuzz_ingest_log: post-recovery replay failed: %s\n",
                   report.status().ToString().c_str());
      std::abort();
    }
  }
  ::unlink(path.c_str());
  return 0;
}
