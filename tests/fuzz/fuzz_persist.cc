/// Fuzz harness: storage/persist LoadTable.
///
/// .dct files are read back at startup from whatever is on disk, so
/// LoadTable must treat the file as untrusted: arbitrary bytes either load
/// or fail with a Status, and anything that loads must survive a
/// SaveTable/LoadTable round trip with the same shape.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "column/table.h"
#include "storage/persist.h"

namespace {

// Writes the fuzz input to a fresh temp file and returns its path, or an
// empty string on failure (resource exhaustion, not a harness bug).
std::string WriteTempFile(const uint8_t* data, size_t size) {
  char path[] = "/tmp/dc_fuzz_persist_XXXXXX";
  int fd = ::mkstemp(path);
  if (fd < 0) return {};
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n <= 0) {
      ::close(fd);
      ::unlink(path);
      return {};
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return path;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1 << 16)) return 0;
  const std::string path = WriteTempFile(data, size);
  if (path.empty()) return 0;

  datacell::Result<datacell::Table> table =
      datacell::storage::LoadTable(path);
  if (!table.ok()) {
    ::unlink(path.c_str());
    return 0;
  }

  // Re-save over the same file and load again: shape must be preserved.
  if (datacell::Status st = datacell::storage::SaveTable(*table, path);
      !st.ok()) {
    std::fprintf(stderr, "fuzz_persist: SaveTable failed on loaded table: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  datacell::Result<datacell::Table> again =
      datacell::storage::LoadTable(path);
  ::unlink(path.c_str());
  if (!again.ok()) {
    std::fprintf(stderr, "fuzz_persist: round trip rejected own output: %s\n",
                 again.status().ToString().c_str());
    std::abort();
  }
  if (again->num_rows() != table->num_rows() ||
      again->num_columns() != table->num_columns()) {
    std::fprintf(stderr, "fuzz_persist: round trip changed table shape\n");
    std::abort();
  }
  return 0;
}
