#include <gtest/gtest.h>

#include "core/basket_expression.h"
#include "core/engine.h"
#include "core/factory.h"
#include "core/metronome.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "ops/aggregate.h"
#include "util/clock.h"

namespace datacell::core {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeBatch(std::initializer_list<int64_t> payloads) {
  Table t(StreamSchema());
  for (int64_t p : payloads) {
    EXPECT_TRUE(t.AppendRow({Value(int64_t{0}), Value(p)}).ok());
  }
  return t;
}

TEST(FactoryTest, FiresOnlyWithInput) {
  SimulatedClock clock;
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto out = std::make_shared<Basket>("out", in->schema(), false);
  int runs = 0;
  auto f = std::make_shared<Factory>("f", [&](FactoryContext& ctx) -> Status {
    ++runs;
    Table batch = ctx.input(0).TakeAll();
    ASSIGN_OR_RETURN(size_t n, ctx.output(0).AppendAligned(batch, ctx.now()));
    (void)n;
    return Status::OK();
  });
  f->AddInput(in).AddOutput(out);
  EXPECT_FALSE(f->CanFire(clock.Now()));
  ASSERT_TRUE(in->Append(MakeBatch({1, 2}), 0).ok());
  EXPECT_TRUE(f->CanFire(clock.Now()));
  auto worked = f->Fire(clock.Now());
  ASSERT_TRUE(worked.ok());
  EXPECT_TRUE(*worked);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(in->size(), 0u);
  EXPECT_EQ(out->size(), 2u);
  EXPECT_FALSE(f->CanFire(clock.Now()));
  EXPECT_EQ(f->stats().firings, 1u);
}

TEST(FactoryTest, MinTuplesThreshold) {
  SimulatedClock clock;
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto f = std::make_shared<Factory>(
      "f", [](FactoryContext&) { return Status::OK(); });
  f->AddInput(in, /*min_tuples=*/3);
  ASSERT_TRUE(in->Append(MakeBatch({1, 2}), 0).ok());
  EXPECT_FALSE(f->CanFire(clock.Now()));
  ASSERT_TRUE(in->Append(MakeBatch({3}), 0).ok());
  EXPECT_TRUE(f->CanFire(clock.Now()));
}

TEST(FactoryTest, MultiInputNeedsAll) {
  SimulatedClock clock;
  auto a = std::make_shared<Basket>("a", StreamSchema());
  auto b = std::make_shared<Basket>("b", StreamSchema());
  auto f = std::make_shared<Factory>(
      "f", [](FactoryContext&) { return Status::OK(); });
  f->AddInput(a).AddInput(b);
  ASSERT_TRUE(a->Append(MakeBatch({1}), 0).ok());
  EXPECT_FALSE(f->CanFire(clock.Now()));
  ASSERT_TRUE(b->Append(MakeBatch({2}), 0).ok());
  EXPECT_TRUE(f->CanFire(clock.Now()));
}

TEST(FactoryTest, StatePersistsAcrossFirings) {
  // The paper's saved-execution-state semantics: a running aggregate folded
  // in batch by batch.
  SimulatedClock clock;
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto sum = std::make_shared<ops::RunningAggregate>(ops::AggFunc::kSum);
  auto f = std::make_shared<Factory>("agg", [&](FactoryContext& ctx) -> Status {
    Table batch = ctx.input(0).TakeAll();
    ASSIGN_OR_RETURN(const Column* payload, batch.GetColumn("payload"));
    return sum->Update(*payload);
  });
  f->AddInput(in);
  ASSERT_TRUE(in->Append(MakeBatch({1, 2}), 0).ok());
  ASSERT_TRUE(f->Fire(clock.Now()).ok());
  ASSERT_TRUE(in->Append(MakeBatch({10}), 0).ok());
  ASSERT_TRUE(f->Fire(clock.Now()).ok());
  EXPECT_EQ(sum->Current(), Value(int64_t{13}));
}

TEST(ReceptorTest, DeliverReplicatesToAllOutputs) {
  auto b1 = std::make_shared<Basket>("b1", StreamSchema());
  auto b2 = std::make_shared<Basket>("b2", StreamSchema());
  Receptor r("r");
  r.AddOutput(b1).AddOutput(b2);
  auto n = r.Deliver(MakeBatch({1, 2, 3}), 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(b1->size(), 3u);
  EXPECT_EQ(b2->size(), 3u);
}

TEST(ReceptorTest, PullModeFiresFromSource) {
  SimulatedClock clock;
  auto b = std::make_shared<Basket>("b", StreamSchema());
  int polls = 0;
  auto source = [&]() -> Result<std::optional<Table>> {
    ++polls;
    if (polls > 2) return std::optional<Table>();
    return std::optional<Table>(MakeBatch({polls}));
  };
  auto r = std::make_shared<Receptor>("r", source);
  r->AddOutput(b);
  ASSERT_TRUE(*r->Fire(clock.Now()));
  ASSERT_TRUE(*r->Fire(clock.Now()));
  EXPECT_FALSE(*r->Fire(clock.Now()));
  EXPECT_EQ(b->size(), 2u);
}

TEST(EmitterTest, DrainsInputsToSink) {
  SimulatedClock clock;
  auto b = std::make_shared<Basket>("b", StreamSchema());
  size_t delivered = 0;
  Emitter e("e", [&](const Table& batch) -> Status {
    delivered += batch.num_rows();
    return Status::OK();
  });
  e.AddInput(b);
  EXPECT_FALSE(e.CanFire(clock.Now()));
  ASSERT_TRUE(b->Append(MakeBatch({1, 2}), 0).ok());
  EXPECT_TRUE(e.CanFire(clock.Now()));
  ASSERT_TRUE(*e.Fire(clock.Now()));
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(b->size(), 0u);
  EXPECT_EQ(e.tuples_emitted(), 2u);
}

TEST(SchedulerTest, PipelineRunsToQuiescence) {
  // receptor basket -> f1 -> mid -> f2 -> out (the query-chain topology).
  SimulatedClock clock;
  auto b0 = std::make_shared<Basket>("b0", StreamSchema());
  auto b1 = std::make_shared<Basket>("b1", b0->schema(), false);
  auto b2 = std::make_shared<Basket>("b2", b0->schema(), false);

  auto forward = [](BasketPtr from, BasketPtr to, ExprPtr pred) {
    auto be = std::make_shared<BasketExpression>(from);
    if (pred) be->Where(pred);
    be->Consume(ConsumePolicy::kBatch);
    auto f = std::make_shared<Factory>(
        "fwd_" + from->name(), [be, to](FactoryContext& ctx) -> Status {
          ASSIGN_OR_RETURN(Table result, be->Evaluate(ctx.eval()));
          if (result.num_rows() > 0) {
            ASSIGN_OR_RETURN(size_t n, to->AppendAligned(result, ctx.now()));
            (void)n;
          }
          return Status::OK();
        });
    f->AddInput(from);
    f->AddOutput(to);
    return f;
  };

  Scheduler sched(&clock);
  sched.Register(forward(
      b0, b1, Expr::Bin(BinaryOp::kGt, Expr::Col("payload"), Expr::Lit(10))));
  sched.Register(forward(
      b1, b2, Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(100))));

  ASSERT_TRUE(b0->Append(MakeBatch({5, 50, 500}), 0).ok());
  auto rounds = sched.RunUntilQuiescent();
  ASSERT_TRUE(rounds.ok());
  EXPECT_GE(*rounds, 1u);
  EXPECT_EQ(b2->size(), 1u);
  EXPECT_EQ(b2->Peek().GetRow(0)[1], Value(50));
  EXPECT_EQ(b0->size(), 0u);
  EXPECT_EQ(b1->size(), 0u);
}

TEST(SchedulerTest, QuiescentImmediatelyWhenEmpty) {
  SimulatedClock clock;
  Scheduler sched(&clock);
  auto b = std::make_shared<Basket>("b", StreamSchema());
  auto f = std::make_shared<Factory>(
      "noop", [](FactoryContext&) { return Status::OK(); });
  f->AddInput(b);
  sched.Register(f);
  auto rounds = sched.RunUntilQuiescent();
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 0u);
}

TEST(SchedulerTest, ThreadedModeProcesses) {
  SystemClock* clock = SystemClock::Get();
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto out = std::make_shared<Basket>("out", in->schema(), false);
  auto f = std::make_shared<Factory>("f", [&](FactoryContext& ctx) -> Status {
    Table batch = ctx.input(0).TakeAll();
    ASSIGN_OR_RETURN(size_t n, ctx.output(0).AppendAligned(batch, ctx.now()));
    (void)n;
    return Status::OK();
  });
  f->AddInput(in);
  f->AddOutput(out);
  Scheduler sched(clock);
  sched.Register(f);
  ASSERT_TRUE(sched.Start().ok());
  ASSERT_TRUE(in->Append(MakeBatch({1, 2, 3}), clock->Now()).ok());
  // Wait for the scheduler thread to drain the input.
  for (int i = 0; i < 1000 && out->size() < 3; ++i) clock->SleepFor(1000);
  sched.Stop();
  EXPECT_EQ(out->size(), 3u);
}

TEST(MetronomeTest, EmitsMarkersAndCatchesUp) {
  SimulatedClock clock(0);
  auto hb = std::make_shared<Basket>("hb", StreamSchema());
  Metronome m("met", hb, /*start=*/100, /*interval=*/100);
  EXPECT_FALSE(m.CanFire(clock.Now()));
  clock.Advance(350);  // ticks at 100, 200, 300 are due
  ASSERT_TRUE(m.CanFire(clock.Now()));
  ASSERT_TRUE(*m.Fire(clock.Now()));
  EXPECT_EQ(hb->size(), 3u);
  EXPECT_EQ(m.next_tick(), 400);
  // Marker rows are null-valued by default.
  Table t = hb->Peek();
  EXPECT_TRUE(t.GetRow(0)[0].is_null());
  EXPECT_TRUE(t.GetRow(0)[1].is_null());
}

TEST(MetronomeTest, HeartbeatCarriesEpoch) {
  SimulatedClock clock(0);
  auto hb = std::make_shared<Basket>("hb", StreamSchema());
  TransitionPtr m = MakeHeartbeat("hb_t", hb, "tag", 50, 50);
  clock.Advance(120);
  ASSERT_TRUE(*m->Fire(clock.Now()));
  Table t = hb->Peek();
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetRow(0)[0], Value(int64_t{50}));
  EXPECT_EQ(t.GetRow(1)[0], Value(int64_t{100}));
  EXPECT_TRUE(t.GetRow(0)[1].is_null());
}

TEST(EngineTest, BasketLifecycle) {
  SimulatedClock clock;
  Engine engine(&clock);
  auto b = engine.CreateBasket("s", StreamSchema());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(engine.HasBasket("s"));
  EXPECT_EQ(engine.CreateBasket("s", StreamSchema()).status().code(),
            StatusCode::kAlreadyExists);
  auto got = engine.GetBasket("s");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), b->get());
  ASSERT_TRUE(engine.DropBasket("s").ok());
  EXPECT_FALSE(engine.HasBasket("s"));
}

TEST(EngineTest, CreateBoundedBasketInstallsCapacity) {
  SimulatedClock clock;
  Engine engine(&clock);
  auto b = engine.CreateBoundedBasket("s", StreamSchema(), /*capacity=*/64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->capacity(), 64u);
  EXPECT_EQ((*b)->low_watermark(), 32u);
  EXPECT_EQ(engine.GetBasket("s")->get(), b->get());
}

TEST(EngineTest, BasketAndTableNamesCollide) {
  SimulatedClock clock;
  Engine engine(&clock);
  ASSERT_TRUE(engine.catalog().CreateTable("t", StreamSchema()).ok());
  EXPECT_EQ(engine.CreateBasket("t", StreamSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(EngineTest, Variables) {
  SimulatedClock clock;
  Engine engine(&clock);
  engine.SetVariable("cnt", Value(0));
  ASSERT_TRUE(engine.HasVariable("cnt"));
  engine.SetVariable("cnt", Value(5));
  EXPECT_EQ(*engine.GetVariable("cnt"), Value(5));
  EXPECT_FALSE(engine.GetVariable("nope").ok());
  auto snap = engine.VariablesSnapshot();
  EXPECT_EQ(snap.at("cnt"), Value(5));
}

TEST(FactoryTest, StatsAccumulateAcrossFirings) {
  SimulatedClock clock;
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto f = std::make_shared<Factory>("f", [](FactoryContext& ctx) -> Status {
    ctx.input(0).Clear();
    return Status::OK();
  });
  f->AddInput(in);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(in->Append(MakeBatch({1}), 0).ok());
    ASSERT_TRUE(f->Fire(clock.Now()).ok());
  }
  EXPECT_EQ(f->stats().firings, 3u);
  EXPECT_GE(f->stats().total_exec, f->stats().last_exec);
}

TEST(FactoryTest, FireReportsNoWorkWhenNothingChanges) {
  SimulatedClock clock;
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto f = std::make_shared<Factory>(
      "noop", [](FactoryContext&) { return Status::OK(); });
  f->AddInput(in);
  ASSERT_TRUE(in->Append(MakeBatch({1}), 0).ok());
  auto worked = f->Fire(clock.Now());
  ASSERT_TRUE(worked.ok());
  EXPECT_FALSE(*worked);  // body touched nothing
}

TEST(BasketTest, PeekRowsSelectsWithoutConsuming) {
  Basket b("b", StreamSchema());
  ASSERT_TRUE(b.Append(MakeBatch({10, 20, 30}), 0).ok());
  Table two = b.PeekRows({0, 2});
  ASSERT_EQ(two.num_rows(), 2u);
  EXPECT_EQ(two.GetRow(0)[1], Value(10));
  EXPECT_EQ(two.GetRow(1)[1], Value(30));
  EXPECT_EQ(b.size(), 3u);
}

TEST(EngineTest, RegisterConvenienceWiresScheduler) {
  SimulatedClock clock;
  Engine engine(&clock);
  auto b = std::make_shared<Basket>("b", StreamSchema());
  bool fired = false;
  auto f = engine.Register(std::make_shared<Factory>(
      "f", [&fired, b](FactoryContext&) -> Status {
        fired = true;
        b->Clear();
        return Status::OK();
      }));
  f->AddInput(b);
  ASSERT_TRUE(b->Append(MakeBatch({1}), 0).ok());
  ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.scheduler().num_transitions(), 1u);
}

TEST(IntegrationTest, SlidingWindowJoinWithTriggerBasket) {
  // The paper's §4.1 example: a join over two baskets guarded by an
  // auxiliary trigger basket so the join runs only when new tuples arrived.
  SimulatedClock clock;
  auto b1 = std::make_shared<Basket>("b1", StreamSchema());
  auto b2 = std::make_shared<Basket>("b2", StreamSchema());
  auto trig = std::make_shared<Basket>("b3", Schema({{"flag", DataType::kBool}}),
                                       false);
  auto out = std::make_shared<Basket>(
      "out", Schema({{"payload", DataType::kInt64}}), false);

  int join_runs = 0;
  auto join = std::make_shared<Factory>("join", [&](FactoryContext& ctx) -> Status {
    ++join_runs;
    trig->Clear();
    // Join on payload; consume matched pairs from both sides (gather).
    Table left = b1->Peek();
    Table right = b2->Peek();
    SelVector lsel, rsel;
    for (uint32_t i = 0; i < left.num_rows(); ++i) {
      for (uint32_t j = 0; j < right.num_rows(); ++j) {
        if (left.column(1).ints()[i] == right.column(1).ints()[j]) {
          lsel.push_back(i);
          rsel.push_back(j);
          Table row(out->schema());
          RETURN_NOT_OK(row.AppendRow({Value(left.column(1).ints()[i])}));
          ASSIGN_OR_RETURN(size_t n, out->AppendAligned(row, ctx.now()));
          (void)n;
        }
      }
    }
    RETURN_NOT_OK(b1->EraseRows(lsel));
    RETURN_NOT_OK(b2->EraseRows(rsel));
    return Status::OK();
  });
  join->AddInput(trig);
  join->AddInput(b1, 1);
  join->AddInput(b2, 1);
  join->AddOutput(out);

  Scheduler sched(&clock);
  sched.Register(join);

  // Tuples on b1 only: no trigger, join must not run.
  ASSERT_TRUE(b1->Append(MakeBatch({7}), 0).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(join_runs, 0);

  // Matching tuple lands on b2 and the trigger is raised.
  ASSERT_TRUE(b2->Append(MakeBatch({7}), 0).ok());
  Table token(trig->schema());
  ASSERT_TRUE(token.AppendRow({Value(true)}).ok());
  ASSERT_TRUE(trig->AppendAligned(token, 0).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(join_runs, 1);
  EXPECT_EQ(out->size(), 1u);
  // Non-matched tuples would remain; here both matched and were removed.
  EXPECT_EQ(b1->size(), 0u);
  EXPECT_EQ(b2->size(), 0u);
}

}  // namespace
}  // namespace datacell::core
