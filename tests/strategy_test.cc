#include <gtest/gtest.h>

#include "core/strategy.h"
#include "util/clock.h"

namespace datacell::core {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeBatch(int64_t lo, int64_t hi) {  // payloads lo..hi-1
  Table t(StreamSchema());
  for (int64_t p = lo; p < hi; ++p) {
    EXPECT_TRUE(t.AppendRow({Value(int64_t{0}), Value(p)}).ok());
  }
  return t;
}

// Three queries with disjoint ranges: [0,10), [10,20), [20,30).
std::vector<ContinuousQuery> DisjointQueries() {
  std::vector<ContinuousQuery> qs;
  for (int i = 0; i < 3; ++i) {
    ExprPtr pred = Expr::Bin(
        BinaryOp::kAnd,
        Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(i * 10)),
        Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit((i + 1) * 10)));
    qs.push_back({"q" + std::to_string(i), pred});
  }
  return qs;
}

void CheckDisjointResults(const QueryNetwork& net) {
  ASSERT_EQ(net.outputs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    Table out = net.outputs[static_cast<size_t>(i)]->Peek();
    EXPECT_EQ(out.num_rows(), 10u);
    auto payload = out.GetColumn("payload");
    ASSERT_TRUE(payload.ok());
    for (size_t r = 0; r < out.num_rows(); ++r) {
      int64_t v = (*payload)->ints()[r];
      EXPECT_GE(v, i * 10);
      EXPECT_LT(v, (i + 1) * 10);
    }
  }
}

class StrategyTest : public ::testing::TestWithParam<int> {
 protected:
  Result<QueryNetwork> Build(size_t batch) {
    switch (GetParam()) {
      case 0:
        return BuildSeparateBaskets(StreamSchema(), DisjointQueries(), batch);
      case 1:
        return BuildSharedBaskets(StreamSchema(), DisjointQueries(), batch);
      default:
        return BuildPartialDeleteChain(StreamSchema(), DisjointQueries(), batch);
    }
  }
};

TEST_P(StrategyTest, DisjointRangesRouteCorrectly) {
  SimulatedClock clock;
  auto net = Build(/*batch=*/30);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 30), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  CheckDisjointResults(*net);
}

TEST_P(StrategyTest, BatchThresholdDefersProcessing) {
  SimulatedClock clock;
  auto net = Build(/*batch=*/30);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  // Half a batch: nothing may be produced yet.
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 15), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  for (const BasketPtr& out : net->outputs) EXPECT_EQ(out->size(), 0u);
  // Completing the batch releases it.
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(15, 30), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  CheckDisjointResults(*net);
}

TEST_P(StrategyTest, MultipleBatchesAccumulate) {
  SimulatedClock clock;
  auto net = Build(/*batch=*/30);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 30), clock.Now()).ok());
    ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  }
  for (const BasketPtr& out : net->outputs) EXPECT_EQ(out->size(), 40u);
}

TEST_P(StrategyTest, NoLeftoverTuplesInInputs) {
  SimulatedClock clock;
  auto net = Build(/*batch=*/30);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  // Payloads 0..29 plus ten tuples (90..99) matching no query: they must
  // still be consumed eventually (no unbounded growth).
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 20), clock.Now()).ok());
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(90, 100), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  for (const BasketPtr& out : net->outputs) {
    // q2 ([20,30)) gets nothing this round.
    (void)out;
  }
  // All stream inputs drained.
  for (const TransitionPtr& t : net->transitions) {
    auto* f = dynamic_cast<Factory*>(t.get());
    ASSERT_NE(f, nullptr);
    for (size_t i = 0; i < f->num_inputs(); ++i) {
      if (f->input(i)->schema().FindField("payload") >= 0) {
        EXPECT_EQ(f->input(i)->size(), 0u)
            << "residue in " << f->input(i)->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("SeparateBaskets");
                             case 1:
                               return std::string("SharedBaskets");
                             default:
                               return std::string("PartialDeletes");
                           }
                         });

TEST(StrategySemanticsTest, SharedBasketsSingleSharedInput) {
  // Shared strategy must NOT replicate the stream: exactly one basket
  // receives the receptor output.
  auto net = BuildSharedBaskets(StreamSchema(), DisjointQueries(), 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->receptor->outputs().size(), 1u);
}

TEST(StrategySemanticsTest, SeparateBasketsReplicate) {
  auto net = BuildSeparateBaskets(StreamSchema(), DisjointQueries(), 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->receptor->outputs().size(), 3u);
}

TEST(StrategySemanticsTest, PartialDeletesShareOneBasket) {
  auto net = BuildPartialDeleteChain(StreamSchema(), DisjointQueries(), 1);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->receptor->outputs().size(), 1u);
}

TEST(StrategySemanticsTest, OverlappingQueriesSeparateSeeAll) {
  // With overlapping predicates, separate baskets deliver the tuple to every
  // matching query (no partial-delete interference).
  SimulatedClock clock;
  std::vector<ContinuousQuery> qs = {
      {"all1", nullptr},
      {"all2", nullptr},
  };
  auto net = BuildSeparateBaskets(StreamSchema(), qs, 5);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 5), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(net->outputs[0]->size(), 5u);
  EXPECT_EQ(net->outputs[1]->size(), 5u);
}

TEST(StrategySemanticsTest, OverlappingQueriesSharedSeeAll) {
  SimulatedClock clock;
  std::vector<ContinuousQuery> qs = {
      {"all1", nullptr},
      {"all2", nullptr},
  };
  auto net = BuildSharedBaskets(StreamSchema(), qs, 5);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 5), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  // Both queries see all 5 tuples: the defining property sharing must keep.
  EXPECT_EQ(net->outputs[0]->size(), 5u);
  EXPECT_EQ(net->outputs[1]->size(), 5u);
}

TEST(StrategySemanticsTest, PartialDeletesEarlierQueryStealsOverlap) {
  // The documented behaviour of the chain on overlapping predicates: the
  // first query consumes matched tuples, later ones never see them.
  SimulatedClock clock;
  std::vector<ContinuousQuery> qs = {
      {"ge5", Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(5))},
      {"all", nullptr},
  };
  auto net = BuildPartialDeleteChain(StreamSchema(), qs, 10);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 10), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(net->outputs[0]->size(), 5u);  // 5..9
  EXPECT_EQ(net->outputs[1]->size(), 5u);  // 0..4 only
}

TEST(SharedPrefixTest, EquivalentToSeparateEvaluation) {
  SimulatedClock clock;
  // Shared prefix payload < 15; residuals pick sub-ranges.
  ExprPtr prefix = Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(15));
  std::vector<ContinuousQuery> residuals = {
      {"low", Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(5))},
      {"mid", Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(5))},
  };
  auto net = BuildSharedPrefix(StreamSchema(), {{"g", prefix, residuals}}, 30);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 30), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  ASSERT_EQ(net->outputs.size(), 2u);
  // low: payload 0..4 (5 tuples); mid: 5..14 (10 tuples).
  EXPECT_EQ(net->outputs[0]->size(), 5u);
  EXPECT_EQ(net->outputs[1]->size(), 10u);
}

TEST(SharedPrefixTest, PrefixEvaluatedOnceReplicatesOnlyMatches) {
  SimulatedClock clock;
  ExprPtr prefix = Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(3));
  std::vector<ContinuousQuery> residuals = {{"all1", nullptr},
                                            {"all2", nullptr}};
  auto net = BuildSharedPrefix(StreamSchema(), {{"g", prefix, residuals}}, 10);
  ASSERT_TRUE(net.ok());
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 10), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  // Both residual queries see exactly the 3 prefix matches.
  EXPECT_EQ(net->outputs[0]->size(), 3u);
  EXPECT_EQ(net->outputs[1]->size(), 3u);
}

TEST(SharedPrefixTest, MultipleGroupsIndependent) {
  SimulatedClock clock;
  std::vector<SharedPrefixGroup> groups = {
      {"a", Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(10)),
       {{"q", nullptr}}},
      {"b", Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(20)),
       {{"q", nullptr}}},
  };
  auto net = BuildSharedPrefix(StreamSchema(), groups, 30);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->receptor->outputs().size(), 2u);  // one basket per group
  Scheduler sched(&clock);
  net->RegisterAll(&sched);
  ASSERT_TRUE(net->receptor->Deliver(MakeBatch(0, 30), clock.Now()).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(net->outputs[0]->size(), 10u);
  EXPECT_EQ(net->outputs[1]->size(), 10u);
}

TEST(SplitPlanTest, LoaderReleasesInputBeforeWorkerRuns) {
  SimulatedClock clock;
  auto input = std::make_shared<Basket>("in", StreamSchema());
  size_t worker_seen = 0;
  size_t input_size_at_worker = 999;
  auto plan = SplitQueryPlan(
      "heavy", input, /*batch_size=*/3,
      [&, input](FactoryContext& ctx) -> Status {
        input_size_at_worker = input->size();
        worker_seen += ctx.input(0).TakeAll().num_rows();
        return Status::OK();
      });
  ASSERT_TRUE(plan.ok());
  Scheduler sched(&clock);
  sched.Register(plan->loader);
  sched.Register(plan->worker);
  ASSERT_TRUE(input->Append(MakeBatch(0, 3), 0).ok());
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(worker_seen, 3u);
  // The shared input had already been drained when the worker ran.
  EXPECT_EQ(input_size_at_worker, 0u);
  EXPECT_EQ(plan->staging->size(), 0u);
}

TEST(SplitPlanTest, WorkerErrorsPropagate) {
  SimulatedClock clock;
  auto input = std::make_shared<Basket>("in", StreamSchema());
  auto plan = SplitQueryPlan("bad", input, 1,
                             [](FactoryContext&) -> Status {
                               return Status::Internal("worker exploded");
                             });
  ASSERT_TRUE(plan.ok());
  Scheduler sched(&clock);
  sched.Register(plan->loader);
  sched.Register(plan->worker);
  ASSERT_TRUE(input->Append(MakeBatch(0, 1), 0).ok());
  auto result = sched.RunUntilQuiescent();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace datacell::core
