#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace datacell {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kTypeMismatch,
        StatusCode::kParseError, StatusCode::kBindError, StatusCode::kIOError,
        StatusCode::kInternal, StatusCode::kUnsupported,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  ASSIGN_OR_RETURN(int half, HalveEven(x));
  ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterEven(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingle) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(pieces, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("where", "wher"));
}

TEST(StringsTest, ParseInt64) {
  auto r = ParseInt64("-123");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, -123);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringsTest, ParseDouble) {
  auto r = ParseDouble("2.5e3");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 2500.0);
  EXPECT_FALSE(ParseDouble("nanx").ok());
}

TEST(StringsTest, Printf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "ok"), "7-ok");
}

TEST(ClockTest, SimulatedAdvances) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.SleepFor(25);  // virtual sleep
  EXPECT_EQ(clock.Now(), 175);
  clock.SetTime(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(ClockTest, SystemMonotone) {
  SystemClock* clock = SystemClock::Get();
  Micros a = clock->Now();
  Micros b = clock->Now();
  EXPECT_LE(a, b);
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace datacell
