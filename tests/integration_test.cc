// Integration tests: multi-subsystem scenarios exercising the public API
// end to end — SQL-defined continuous-query networks, time-driven
// eviction, threaded scheduling under load, and a miniature Linear Road
// accident pipeline written purely in DataCell SQL.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <thread>

#include "core/engine.h"
#include "core/metronome.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "sql/session.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/random.h"

namespace datacell {
namespace {

// ---------------------------------------------------------------------------
// A 50-query SQL workload over one stream, checked against a brute-force
// oracle.
// ---------------------------------------------------------------------------

TEST(SqlWorkloadTest, FiftyContinuousQueriesMatchOracle) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  sql::Session session(&engine);
  ASSERT_TRUE(session.Execute("create basket s (payload int)").ok());

  // 50 range queries over a private replica each (separate-baskets style
  // via one basket per query to keep consumption independent).
  constexpr int kQueries = 50;
  std::vector<int64_t> lows;
  std::vector<size_t> oracle(kQueries, 0);
  for (int q = 0; q < kQueries; ++q) {
    const int64_t lo = (q * 17) % 90;
    lows.push_back(lo);
    ASSERT_TRUE(session
                    .Execute("create basket s" + std::to_string(q) +
                             " (payload int);"
                             "create basket out" + std::to_string(q) +
                             " (payload int)")
                    .ok());
    auto f = session.RegisterContinuousQuery(
        "q" + std::to_string(q),
        "insert into out" + std::to_string(q) +
            " select * from [select * from s" + std::to_string(q) +
            "] as z where z.payload >= " + std::to_string(lo) +
            " and z.payload < " + std::to_string(lo + 10));
    ASSERT_TRUE(f.ok()) << f.status().ToString();
  }

  // Feed three batches, replicating to all query baskets (receptor role).
  Random rng(99);
  for (int round = 0; round < 3; ++round) {
    std::string values;
    for (int i = 0; i < 40; ++i) {
      const int64_t v = static_cast<int64_t>(rng.Uniform(100));
      if (i) values += ", ";
      values += "(" + std::to_string(v) + ")";
      for (int q = 0; q < kQueries; ++q) {
        if (v >= lows[q] && v < lows[q] + 10) ++oracle[q];
      }
    }
    for (int q = 0; q < kQueries; ++q) {
      ASSERT_TRUE(
          session.Execute("insert into s" + std::to_string(q) + " values " + values)
              .ok());
    }
    ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  }

  for (int q = 0; q < kQueries; ++q) {
    auto out = engine.GetBasket("out" + std::to_string(q));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ((*out)->size(), oracle[q]) << "query " << q;
  }
}

// ---------------------------------------------------------------------------
// Metronome-driven eviction: a garbage-collection continuous query fired
// by heartbeat markers (the §5 time-out pattern, end to end).
// ---------------------------------------------------------------------------

TEST(TimeDrivenTest, HeartbeatDrivenGarbageCollection) {
  SimulatedClock clock(0);
  core::Engine engine(&clock);
  sql::Session session(&engine);
  ASSERT_TRUE(session
                  .Execute("create basket events (tag timestamp, payload int);"
                           "create basket ticks (epoch timestamp);"
                           "create table trash (tag timestamp, payload int)")
                  .ok());
  // Metronome ticks every simulated second.
  auto ticks = engine.GetBasket("ticks");
  ASSERT_TRUE(ticks.ok());
  engine.Register(core::MakeHeartbeat("hb", *ticks, "epoch",
                                      kMicrosPerSecond, kMicrosPerSecond));
  // GC query: fires on tick markers; sweeps events older than 5 seconds.
  auto gc = session.RegisterContinuousQuery(
      "gc",
      "with t as [select * from ticks] begin "
      "insert into trash [select all from events where events.tag < "
      "now() - interval 5 second]; "
      "end");
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();

  // t=1s: two events arrive.
  clock.SetTime(1 * kMicrosPerSecond);
  ASSERT_TRUE(session
                  .Execute("insert into events values (1000000, 1), "
                           "(1000000, 2)")
                  .ok());
  ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine.GetBasket("events"))->size(), 2u);

  // t=3s: another event; the first two are still fresh.
  clock.SetTime(3 * kMicrosPerSecond);
  ASSERT_TRUE(session.Execute("insert into events values (3000000, 3)").ok());
  ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine.GetBasket("events"))->size(), 3u);
  EXPECT_EQ(*session.Execute("select count(*) n from trash")->GetRow(0).data(),
            Value(int64_t{0}));

  // t=7s: the metronome catches up and the t=1s events expire.
  clock.SetTime(7 * kMicrosPerSecond);
  ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine.GetBasket("events"))->size(), 1u);
  auto trash = session.Execute("select count(*) n from trash");
  ASSERT_TRUE(trash.ok());
  EXPECT_EQ(trash->GetRow(0)[0], Value(int64_t{2}));
}

// ---------------------------------------------------------------------------
// Threaded scheduler under sustained pull-mode load.
// ---------------------------------------------------------------------------

TEST(ThreadedTest, PullReceptorChainUnderLoad) {
  SystemClock* clock = SystemClock::Get();
  Schema schema({{"seq", DataType::kInt64}});
  auto b0 = std::make_shared<core::Basket>("b0", schema);
  auto b1 = std::make_shared<core::Basket>("b1", b0->schema(), false);

  constexpr int64_t kTotal = 20'000;
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  auto source = [counter, &schema]() -> Result<std::optional<Table>> {
    if (counter->load() >= kTotal) return std::optional<Table>();
    Table t(schema);
    for (int i = 0; i < 100 && counter->load() < kTotal; ++i) {
      RETURN_NOT_OK(t.AppendRow({Value(counter->fetch_add(1))}));
    }
    return std::optional<Table>(std::move(t));
  };
  auto receptor = std::make_shared<core::Receptor>("gen", source);
  receptor->AddOutput(b0);

  auto forward = std::make_shared<core::Factory>(
      "fwd", [b1](core::FactoryContext& ctx) -> Status {
        Table t = ctx.input(0).TakeAll();
        ASSIGN_OR_RETURN(size_t n, b1->AppendAligned(t, ctx.now()));
        (void)n;
        return Status::OK();
      });
  forward->AddInput(b0);
  forward->AddOutput(b1);

  std::atomic<int64_t> received{0};
  std::set<int64_t> seen;
  // kLogging: leaf rank — the emitter body runs under basket locks.
  Mutex seen_mu{LockRank::kLogging};
  auto emitter = std::make_shared<core::Emitter>(
      "sink", [&](const Table& batch) -> Status {
        auto col = batch.GetColumn("seq");
        RETURN_NOT_OK(col.status());
        MutexLock lock(&seen_mu);
        for (int64_t v : (*col)->ints()) seen.insert(v);
        received.fetch_add(static_cast<int64_t>(batch.num_rows()));
        return Status::OK();
      });
  emitter->AddInput(b1);

  core::Scheduler sched(clock);
  sched.Register(receptor);
  sched.Register(forward);
  sched.Register(emitter);
  ASSERT_TRUE(sched.Start().ok());
  for (int i = 0; i < 20000 && received.load() < kTotal; ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  EXPECT_EQ(received.load(), kTotal);
  // Every tuple arrived exactly once (no loss, no duplication).
  MutexLock lock(&seen_mu);
  EXPECT_EQ(seen.size(), static_cast<size_t>(kTotal));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), kTotal - 1);
}

// ---------------------------------------------------------------------------
// A miniature accident pipeline written purely in DataCell SQL: stopped-car
// candidates via self-join, accident confirmation via group-by/having —
// the flavor of Linear Road's Q1/Q2 in the declarative layer.
// ---------------------------------------------------------------------------

TEST(SqlPipelineTest, AccidentDetectionInSql) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  sql::Session session(&engine);
  ASSERT_TRUE(session
                  .Execute("create basket reports (vid int, speed int, "
                           "pos int);"
                           "create basket stopped (vid int, pos int);"
                           "create table accidents (pos int, cars int)")
                  .ok());

  // Stage 1: zero-speed reports flow into `stopped` (filter).
  ASSERT_TRUE(session
                  .RegisterContinuousQuery(
                      "find_stopped",
                      "insert into stopped select r.vid, r.pos from "
                      "[select * from reports] as r where r.speed = 0")
                  .ok());
  // Stage 2: positions with at least two distinct stopped cars become
  // accidents (aggregation + having over the stopped stream).
  ASSERT_TRUE(session
                  .RegisterContinuousQuery(
                      "confirm",
                      "insert into accidents select z.pos, count(*) cars "
                      "from [select * from stopped] as z "
                      "group by z.pos having count(*) >= 2")
                  .ok());

  ASSERT_TRUE(session
                  .Execute("insert into reports values "
                           "(1, 0, 500), (2, 0, 500), (3, 55, 700), "
                           "(4, 0, 900)")
                  .ok());
  ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());

  auto accidents = session.Execute("select pos, cars from accidents");
  ASSERT_TRUE(accidents.ok());
  ASSERT_EQ(accidents->num_rows(), 1u);
  EXPECT_EQ(accidents->GetRow(0)[0], Value(500));
  EXPECT_EQ(accidents->GetRow(0)[1], Value(int64_t{2}));
  // The lone stopped car at 900 is no accident.
}

// ---------------------------------------------------------------------------
// Predicate-window prioritization: out-of-order processing by content
// (§3.2: "we are not restricted to process tuples in the order they
// arrive").
// ---------------------------------------------------------------------------

TEST(OutOfOrderTest, HighPriorityTuplesProcessedFirst) {
  SimulatedClock clock;
  core::Engine engine(&clock);
  sql::Session session(&engine);
  ASSERT_TRUE(session
                  .Execute("create basket q (priority int, job int);"
                           "create table done (job int)")
                  .ok());
  ASSERT_TRUE(session
                  .Execute("insert into q values (2, 100), (1, 200), "
                           "(2, 300), (1, 400)")
                  .ok());
  // First drain priority 1 (a predicate window picks them regardless of
  // arrival order), then the rest.
  ASSERT_TRUE(session
                  .Execute("insert into done select z.job from "
                           "[select * from q where q.priority = 1] as z")
                  .ok());
  auto after_first = session.Execute("select job from done order by job");
  ASSERT_TRUE(after_first.ok());
  ASSERT_EQ(after_first->num_rows(), 2u);
  EXPECT_EQ(after_first->GetRow(0)[0], Value(200));
  EXPECT_EQ(after_first->GetRow(1)[0], Value(400));
  // Low-priority tuples are still waiting, untouched.
  EXPECT_EQ((*engine.GetBasket("q"))->size(), 2u);
  ASSERT_TRUE(session
                  .Execute("insert into done select z.job from "
                           "[select * from q] as z")
                  .ok());
  EXPECT_EQ((*engine.GetBasket("q"))->size(), 0u);
  auto all = session.Execute("select count(*) n from done");
  EXPECT_EQ(all->GetRow(0)[0], Value(int64_t{4}));
}

// ---------------------------------------------------------------------------
// Concurrency: many producer threads appending into one basket while a
// threaded scheduler consumes — conservation must hold and nothing may be
// lost or duplicated.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ParallelProducersSingleConsumer) {
  SystemClock* clock = SystemClock::Get();
  Schema schema({{"producer", DataType::kInt64}, {"seq", DataType::kInt64}});
  auto in = std::make_shared<core::Basket>("in", schema);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int64_t> consumed{0};
  std::array<std::atomic<int64_t>, kProducers> per_producer{};

  auto consumer = std::make_shared<core::Factory>(
      "consume", [&](core::FactoryContext& ctx) -> Status {
        Table batch = ctx.input(0).TakeAll();
        auto prod = batch.GetColumn("producer");
        RETURN_NOT_OK(prod.status());
        for (int64_t p : (*prod)->ints()) {
          per_producer[static_cast<size_t>(p)].fetch_add(1);
        }
        consumed.fetch_add(static_cast<int64_t>(batch.num_rows()));
        return Status::OK();
      });
  consumer->AddInput(in);
  core::Scheduler sched(clock);
  sched.Register(consumer);
  ASSERT_TRUE(sched.Start().ok());

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; i += 50) {
        Table batch(schema);
        for (int j = i; j < i + 50; ++j) {
          ASSERT_TRUE(batch.AppendRow({Value(p), Value(j)}).ok());
        }
        ASSERT_TRUE(in->Append(batch, clock->Now()).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  const int64_t total = int64_t{kProducers} * kPerProducer;
  for (int i = 0; i < 20000 && consumed.load() < total; ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  EXPECT_EQ(consumed.load(), total);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(per_producer[static_cast<size_t>(p)].load(), kPerProducer);
  }
  const auto stats = in->stats();
  EXPECT_EQ(stats.appended, static_cast<uint64_t>(total));
  EXPECT_EQ(stats.consumed, static_cast<uint64_t>(total));
  EXPECT_EQ(in->size(), 0u);
}

TEST(ConcurrencyTest, SharedBasketTwoFactoriesNoDeadlock) {
  // Two factories share two baskets in opposite input/output order; the
  // canonical lock ordering in Factory::Fire must prevent deadlock under a
  // threaded scheduler.
  SystemClock* clock = SystemClock::Get();
  Schema schema({{"v", DataType::kInt64}});
  auto a = std::make_shared<core::Basket>("a", schema, /*add_arrival_ts=*/false);
  auto b = std::make_shared<core::Basket>("b", schema, /*add_arrival_ts=*/false);

  std::atomic<int64_t> moved_ab{0}, moved_ba{0};
  // a -> b mover for even values, b -> a mover drains (values decremented
  // until they vanish), guaranteeing termination.
  auto ab = std::make_shared<core::Factory>(
      "ab", [&, a, b](core::FactoryContext& ctx) -> Status {
        Table batch = a->TakeAll();
        auto col = batch.GetColumn("v");
        RETURN_NOT_OK(col.status());
        Table fwd(batch.schema());
        for (int64_t v : (*col)->ints()) {
          if (v > 0) {
            RETURN_NOT_OK(fwd.AppendRow({Value(v - 1)}));
          }
        }
        moved_ab.fetch_add(static_cast<int64_t>(batch.num_rows()));
        if (fwd.num_rows() > 0) {
          ASSIGN_OR_RETURN(size_t n, b->AppendAligned(fwd, ctx.now()));
          (void)n;
        }
        return Status::OK();
      });
  ab->AddInput(a);
  ab->AddOutput(b);
  auto ba = std::make_shared<core::Factory>(
      "ba", [&, a, b](core::FactoryContext& ctx) -> Status {
        Table batch = b->TakeAll();
        auto col = batch.GetColumn("v");
        RETURN_NOT_OK(col.status());
        Table fwd(batch.schema());
        for (int64_t v : (*col)->ints()) {
          if (v > 0) {
            RETURN_NOT_OK(fwd.AppendRow({Value(v - 1)}));
          }
        }
        moved_ba.fetch_add(static_cast<int64_t>(batch.num_rows()));
        if (fwd.num_rows() > 0) {
          ASSIGN_OR_RETURN(size_t n, a->AppendAligned(fwd, ctx.now()));
          (void)n;
        }
        return Status::OK();
      });
  ba->AddInput(b);
  ba->AddOutput(a);

  core::Scheduler sched(clock);
  sched.Register(ab);
  sched.Register(ba);
  ASSERT_TRUE(sched.Start().ok());
  Table seed(schema);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(seed.AppendRow({Value(16)}).ok());
  }
  ASSERT_TRUE(a->Append(seed, clock->Now()).ok());
  // Every tuple ping-pongs 16 times then evaporates; wait for quiescence.
  // size() is a lock-free read, so both baskets can look empty while a
  // firing holds the tuples in flight — require the scheduler idle too.
  for (int i = 0;
       i < 20000 && !(a->size() == 0 && b->size() == 0 && sched.Idle());
       ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  EXPECT_EQ(a->size(), 0u);
  EXPECT_EQ(b->size(), 0u);
  EXPECT_GT(moved_ab.load(), 0);
  EXPECT_GT(moved_ba.load(), 0);
}

}  // namespace
}  // namespace datacell
