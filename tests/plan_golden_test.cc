// EXPLAIN golden tests: the optimized-plan rendering is part of the
// engine's contract. Each scenario builds a fresh engine, registers a
// standing-query set, and snapshots EXPLAIN output (plus the shared-stage
// transition names, which prove how the optimizer factored the set).
//
// Regenerate with:  UPDATE_GOLDENS=1 ./plan_golden_test

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/session.h"
#include "util/clock.h"

#ifndef DATACELL_GOLDEN_DIR
#define DATACELL_GOLDEN_DIR "tests/goldens"
#endif

namespace datacell::sql {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(DATACELL_GOLDEN_DIR) + "/" + name + ".golden";
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with UPDATE_GOLDENS=1 to create)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual) << "golden mismatch for " << name
                               << "; regenerate with UPDATE_GOLDENS=1 if "
                                  "the change is intentional";
}

class GoldenFixture : public ::testing::Test {
 protected:
  GoldenFixture() : clock_(0), engine_(&clock_), session_(&engine_) {}

  void Exec(const std::string& sql) {
    auto r = session_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  std::string Explain(const std::string& sql) {
    auto r = session_.Execute("explain " + sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::string text;
    if (!r.ok()) return text;
    for (size_t i = 0; i < r->num_rows(); ++i) {
      text += r->GetRow(i)[0].ToString();
      text += "\n";
    }
    return text;
  }

  // Sorted shared-stage transition names: the factoring proof.
  std::string SharedTransitions() {
    std::vector<std::string> names;
    for (const auto& t : engine_.scheduler().TransitionStatsSnapshot()) {
      if (t.name.rfind("mqo.", 0) == 0) names.push_back(t.name);
    }
    std::sort(names.begin(), names.end());
    std::string out = "-- shared stage transitions --\n";
    for (const std::string& n : names) out += n + "\n";
    return out;
  }

  SimulatedClock clock_;
  core::Engine engine_;
  Session session_;
};

TEST_F(GoldenFixture, SharedPrefixFactoring) {
  // Three queries with a common scan+filter prefix (a > 10) and one
  // private conjunct each: the prefix must factor into exactly one shared
  // root chain with three branch stages.
  Exec("create basket s (a int, b int)");
  session_.set_sharing_enabled(true);
  for (int i = 1; i <= 3; ++i) {
    auto f = session_.RegisterContinuousSelect(
        "q" + std::to_string(i),
        "select * from [select * from s where a > 10 and b = " +
            std::to_string(i) + "]",
        nullptr);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
  }
  std::string out = Explain(
      "select * from [select * from s where a > 10 and b = 1]");
  out += SharedTransitions();
  CheckGolden("shared_prefix_factoring", out);
}

TEST_F(GoldenFixture, IdenticalQueriesSingleChain) {
  // N queries with the *whole* filter in common: one shared factory chain,
  // no branch stages at all.
  Exec("create basket s (a int, b int)");
  session_.set_sharing_enabled(true);
  for (int i = 1; i <= 4; ++i) {
    auto f = session_.RegisterContinuousSelect(
        "q" + std::to_string(i),
        "select * from [select * from s where a > 10 and b < 7]", nullptr);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
  }
  std::string out =
      Explain("select * from [select * from s where a > 10 and b < 7]");
  out += SharedTransitions();
  CheckGolden("identical_queries_single_chain", out);
}

TEST_F(GoldenFixture, SelectivityOrderedPushdown) {
  // eq (0.10) before range (0.33) before ne (0.90), regardless of the
  // order they were written in.
  Exec("create basket s (a int, b int, c int)");
  session_.set_sharing_enabled(true);
  std::string out = Explain(
      "select * from [select * from s where a <> 1 and c > 3 and b = 2]");
  CheckGolden("selectivity_ordered_pushdown", out);
}

TEST_F(GoldenFixture, SharingDisabledRendering) {
  Exec("create basket s (a int)");
  std::string out =
      Explain("select * from [select * from s where a > 10]");
  CheckGolden("sharing_disabled", out);
}

TEST_F(GoldenFixture, OneTimeJoinPlan) {
  Exec("create table orders (id int, cust string)");
  Exec("create table payments (oid int, amt double)");
  std::string out = Explain(
      "select orders.id, payments.amt from orders, payments "
      "where orders.id = payments.oid and payments.amt > 100");
  CheckGolden("one_time_join", out);
}

TEST_F(GoldenFixture, NonTrivialWindowKeepsOuterFilterPostWindow) {
  Exec("create basket s (a int, b int)");
  session_.set_sharing_enabled(true);
  std::string out = Explain(
      "select * from [select top 5 from s where a > 10 order by b] as w "
      "where w.b < 100");
  CheckGolden("window_blocks_outer_pushdown", out);
}

}  // namespace
}  // namespace datacell::sql
