#include <gtest/gtest.h>

#include "core/basket.h"
#include "core/basket_expression.h"

namespace datacell::core {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table MakeBatch(std::initializer_list<int64_t> payloads, Micros tag = 0) {
  Table t(StreamSchema());
  for (int64_t p : payloads) {
    EXPECT_TRUE(t.AppendRow({Value(tag), Value(p)}).ok());
  }
  return t;
}

TEST(BasketTest, SchemaGainsArrivalColumn) {
  Basket b("s", StreamSchema());
  EXPECT_TRUE(b.has_arrival_column());
  EXPECT_EQ(b.schema().num_fields(), 3u);
  EXPECT_GE(b.schema().FindField(kArrivalColumn), 0);
}

TEST(BasketTest, OptOutOfArrivalColumn) {
  Basket b("s", StreamSchema(), /*add_arrival_ts=*/false);
  EXPECT_FALSE(b.has_arrival_column());
  EXPECT_EQ(b.schema().num_fields(), 2u);
}

TEST(BasketTest, AppendStampsArrival) {
  Basket b("s", StreamSchema());
  auto n = b.Append(MakeBatch({1, 2}), /*now=*/777);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  Table peek = b.Peek();
  auto col = peek.GetColumn(kArrivalColumn);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ints()[0], 777);
  EXPECT_EQ((*col)->ints()[1], 777);
}

TEST(BasketTest, AppendArityChecked) {
  Basket b("s", StreamSchema());
  Table bad(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(bad.AppendRow({Value(1)}).ok());
  EXPECT_EQ(b.Append(bad, 0).status().code(), StatusCode::kTypeMismatch);
}

TEST(BasketTest, DisabledBasketDropsSilently) {
  Basket b("s", StreamSchema());
  b.Disable();
  auto n = b.Append(MakeBatch({1}), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.stats().dropped, 1u);
  b.Enable();
  n = b.Append(MakeBatch({2}), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(BasketTest, IntegrityConstraintSilentFilter) {
  Basket b("s", StreamSchema());
  // Only non-negative payloads are structurally valid events.
  b.AddConstraint(Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(0)));
  auto n = b.Append(MakeBatch({5, -3, 7}), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(b.size(), 2u);
  auto stats = b.stats();
  EXPECT_EQ(stats.appended, 2u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(BasketTest, MultipleConstraintsConjoin) {
  Basket b("s", StreamSchema());
  b.AddConstraint(Expr::Bin(BinaryOp::kGe, Expr::Col("payload"), Expr::Lit(0)));
  b.AddConstraint(Expr::Bin(BinaryOp::kLt, Expr::Col("payload"), Expr::Lit(10)));
  auto n = b.Append(MakeBatch({-1, 5, 20}), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(BasketTest, TakeAllEmptiesAndCounts) {
  Basket b("s", StreamSchema());
  ASSERT_TRUE(b.Append(MakeBatch({1, 2, 3}), 0).ok());
  Table all = b.TakeAll();
  EXPECT_EQ(all.num_rows(), 3u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.stats().consumed, 3u);
}

TEST(BasketTest, TakeRowsRemovesSelected) {
  Basket b("s", StreamSchema());
  ASSERT_TRUE(b.Append(MakeBatch({10, 20, 30, 40}), 0).ok());
  auto taken = b.TakeRows({1, 3});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->num_rows(), 2u);
  EXPECT_EQ(taken->GetRow(0)[1], Value(20));
  EXPECT_EQ(b.size(), 2u);
  Table rest = b.Peek();
  EXPECT_EQ(rest.GetRow(0)[1], Value(10));
  EXPECT_EQ(rest.GetRow(1)[1], Value(30));
}

TEST(BasketTest, ErasePrefix) {
  Basket b("s", StreamSchema());
  ASSERT_TRUE(b.Append(MakeBatch({1, 2, 3}), 0).ok());
  ASSERT_TRUE(b.ErasePrefix(2).ok());
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Peek().GetRow(0)[1], Value(3));
  // Larger than size clamps.
  ASSERT_TRUE(b.ErasePrefix(10).ok());
  EXPECT_EQ(b.size(), 0u);
}

TEST(BasketTest, AppendRowConvenience) {
  Basket b("s", StreamSchema());
  ASSERT_TRUE(b.AppendRow({Value(int64_t{5}), Value(9)}, 123).ok());
  EXPECT_EQ(b.size(), 1u);
}

TEST(BasketExprTest, SelectAllConsumesBatch) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({1, 2, 3}), 0).ok());
  BasketExpression be(b);
  be.Consume(ConsumePolicy::kBatch);
  EvalContext ctx;
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(b->size(), 0u);
}

TEST(BasketExprTest, PredicateWindowConsumesMatchedOnly) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({1, 8, 3, 9}), 0).ok());
  BasketExpression be(b);
  be.Where(Expr::Bin(BinaryOp::kGt, Expr::Col("payload"), Expr::Lit(5)));
  be.Consume(ConsumePolicy::kMatched);
  EvalContext ctx;
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  // Non-matching tuples remain (partially emptied basket).
  EXPECT_EQ(b->size(), 2u);
  EXPECT_EQ(b->Peek().GetRow(0)[1], Value(1));
  EXPECT_EQ(b->Peek().GetRow(1)[1], Value(3));
}

TEST(BasketExprTest, PeekDoesNotConsume) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({1, 2}), 0).ok());
  BasketExpression be(b);
  be.Consume(ConsumePolicy::kNone);
  EvalContext ctx;
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(b->size(), 2u);
}

TEST(BasketExprTest, TopNWaitsForFullWindow) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({3, 1}), 0).ok());
  BasketExpression be(b);
  be.Top(3).OrderBy({{Expr::Col("payload"), true}});
  EvalContext ctx;
  // Window incomplete: nothing returned, nothing consumed.
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 0u);
  EXPECT_EQ(b->size(), 2u);
  EXPECT_EQ(be.MinTuples(), 3u);
  // Third tuple completes the window.
  ASSERT_TRUE(b->Append(MakeBatch({2}), 0).ok());
  out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->GetRow(0)[1], Value(1));
  EXPECT_EQ(out->GetRow(1)[1], Value(2));
  EXPECT_EQ(out->GetRow(2)[1], Value(3));
  EXPECT_EQ(b->size(), 0u);
}

TEST(BasketExprTest, TopNInArrivalOrder) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({9, 8, 7, 6}), 0).ok());
  BasketExpression be(b);
  be.Top(2);
  EvalContext ctx;
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_EQ(out->GetRow(0)[1], Value(9));
  EXPECT_EQ(out->GetRow(1)[1], Value(8));
  // Exactly the two consumed tuples left the basket.
  EXPECT_EQ(b->size(), 2u);
}

TEST(BasketExprTest, SlidingWindowExpiry) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  // Tuples arrive at t=0 and t=100.
  ASSERT_TRUE(b->Append(MakeBatch({1}, 0), 0).ok());
  ASSERT_TRUE(b->Append(MakeBatch({2}, 100), 100).ok());
  BasketExpression be(b);
  be.Consume(ConsumePolicy::kExpired);
  // Expire anything that arrived before t=50: tuple 1 leaves, tuple 2 stays
  // for the next window.
  be.ExpireWhere(Expr::Bin(BinaryOp::kLt, Expr::Col(kArrivalColumn),
                           Expr::Lit(int64_t{50})));
  EvalContext ctx;
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);  // window saw both
  EXPECT_EQ(b->size(), 1u);        // only the old one expired
  EXPECT_EQ(b->Peek().GetRow(0)[1], Value(2));
}

TEST(BasketExprTest, ExpiredPolicyRequiresPredicate) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({1}), 0).ok());
  BasketExpression be(b);
  be.Consume(ConsumePolicy::kExpired);
  EvalContext ctx;
  EXPECT_FALSE(be.Evaluate(ctx).ok());
}

TEST(BasketExprTest, OrderByWithoutTopSortsWindow) {
  auto b = std::make_shared<Basket>("s", StreamSchema());
  ASSERT_TRUE(b->Append(MakeBatch({5, 1, 3}), 0).ok());
  BasketExpression be(b);
  be.OrderBy({{Expr::Col("payload"), false}}).Consume(ConsumePolicy::kBatch);
  EvalContext ctx;
  auto out = be.Evaluate(ctx);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_EQ(out->GetRow(0)[1], Value(5));
  EXPECT_EQ(out->GetRow(2)[1], Value(1));
  EXPECT_EQ(b->size(), 0u);
}

TEST(BasketCapacityTest, CreditAndWatermarks) {
  Basket b("s", StreamSchema());
  // Unbounded by default.
  EXPECT_EQ(b.capacity(), 0u);
  EXPECT_EQ(b.CreditRemaining(), SIZE_MAX);
  EXPECT_TRUE(b.Drained());

  b.SetCapacity(10);  // low watermark defaults to high/2
  EXPECT_EQ(b.capacity(), 10u);
  EXPECT_EQ(b.low_watermark(), 5u);
  ASSERT_TRUE(b.Append(MakeBatch({1, 2, 3, 4, 5, 6, 7}), 0).ok());
  EXPECT_EQ(b.CreditRemaining(), 3u);
  EXPECT_FALSE(b.Drained());  // 7 > low watermark

  ASSERT_TRUE(b.Append(MakeBatch({8, 9, 10, 11, 12}), 0).ok());
  EXPECT_EQ(b.size(), 12u);  // cooperative bound: appends never rejected
  EXPECT_EQ(b.CreditRemaining(), 0u);
  EXPECT_EQ(b.stats().dropped, 0u);

  ASSERT_TRUE(b.ErasePrefix(7).ok());
  EXPECT_TRUE(b.Drained());  // 5 <= low watermark
  EXPECT_EQ(b.CreditRemaining(), 5u);
  EXPECT_EQ(b.stats().peak_rows, 12u);

  b.SetCapacity(0);  // bound removed
  EXPECT_EQ(b.CreditRemaining(), SIZE_MAX);
  EXPECT_TRUE(b.Drained());
}

TEST(BasketCapacityTest, ExplicitLowWatermarkClampedToHigh) {
  Basket b("s", StreamSchema());
  b.SetCapacity(4, 100);
  EXPECT_EQ(b.low_watermark(), 4u);
  b.SetCapacity(8, 2);
  EXPECT_EQ(b.low_watermark(), 2u);
}

TEST(BasketCapacityTest, DisableStillDropsWhileCapacityPushesBack) {
  // Disable() keeps the paper's drop semantics independent of the bound.
  Basket b("s", StreamSchema());
  b.SetCapacity(2);
  b.Disable();
  ASSERT_TRUE(b.Append(MakeBatch({1, 2, 3}), 0).ok());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.stats().dropped, 3u);
  b.Enable();
  ASSERT_TRUE(b.Append(MakeBatch({4, 5, 6}), 0).ok());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.stats().dropped, 3u);
}

}  // namespace
}  // namespace datacell::core
