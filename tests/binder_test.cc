// Binder error paths: malformed references must come back as clean Status
// values — never an abort — whether hit by one-time execution or while
// registering a continuous query.

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "sql/binder.h"
#include "sql/session.h"
#include "util/clock.h"

namespace datacell::sql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : clock_(0), engine_(&clock_), session_(&engine_) {}

  void Exec(const std::string& sql) {
    auto r = session_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  Status ExecStatus(const std::string& sql) {
    return session_.Execute(sql).status();
  }

  SimulatedClock clock_;
  core::Engine engine_;
  Session session_;
};

TEST_F(BinderTest, UnknownTableIsCleanError) {
  Status s = ExecStatus("select * from no_such_relation");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("no_such_relation"), std::string::npos)
      << s.ToString();
}

TEST_F(BinderTest, UnknownColumnIsCleanError) {
  Exec("create table t (a int)");
  Exec("insert into t values (1)");
  EXPECT_FALSE(ExecStatus("select missing_col from t").ok());
  EXPECT_FALSE(ExecStatus("select a from t where missing_col > 1").ok());
}

TEST_F(BinderTest, AmbiguousColumnAcrossJoinIsCleanError) {
  Exec("create table l (id int, v int)");
  Exec("create table r (id int, w int)");
  Exec("insert into l values (1, 10)");
  Exec("insert into r values (1, 20)");
  // Unqualified `id` exists on both sides.
  Status s = ExecStatus("select id from l, r where l.id = r.id");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("ambiguous"), std::string::npos)
      << s.ToString();
  // Qualified access works.
  Exec("select l.id from l, r where l.id = r.id");
}

TEST_F(BinderTest, TypeMismatchedPredicateIsCleanError) {
  Exec("create table t (a int, name string)");
  Exec("insert into t values (1, 'x')");
  EXPECT_FALSE(ExecStatus("select * from t where a > 'x'").ok());
  EXPECT_FALSE(ExecStatus("select * from t where name + 1 > 0").ok());
}

TEST_F(BinderTest, ContinuousRegistrationSurfacesBindErrors) {
  Exec("create basket s (a int)");
  // Unknown source basket: clean error at registration.
  auto missing = session_.RegisterContinuousSelect(
      "q_missing", "select * from [select * from no_such_basket]", nullptr);
  EXPECT_FALSE(missing.ok());
  // A registered query with an unresolvable column errors per firing
  // without tearing the engine down (the scheduler surfaces the status).
  auto bad = session_.RegisterContinuousSelect(
      "q_bad", "select * from [select * from s where zzz > 1]", nullptr);
  ASSERT_TRUE(bad.ok());
  Exec("insert into s values (1)");
  EXPECT_FALSE(engine_.scheduler().RunUntilQuiescent().ok());
}

TEST_F(BinderTest, NameScopeResolvesAndRejects) {
  NameScope scope;
  scope.AddSource("a", {{"x", "x"}, {"y", "y"}});
  scope.AddSource("b", {{"x", "b_x"}, {"z", "z"}});
  ASSERT_TRUE(scope.Resolve("y").ok());
  ASSERT_TRUE(scope.Resolve("a.x").ok());
  EXPECT_EQ(*scope.Resolve("b.x"), "b_x");
  EXPECT_FALSE(scope.Resolve("x").ok());        // ambiguous
  EXPECT_FALSE(scope.Resolve("c.x").ok());      // unknown alias
  EXPECT_FALSE(scope.Resolve("a.nope").ok());   // unknown column
}

}  // namespace
}  // namespace datacell::sql
