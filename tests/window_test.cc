#include <gtest/gtest.h>

#include "core/metronome.h"
#include "core/scheduler.h"
#include "core/window.h"
#include "util/clock.h"

namespace datacell::core {
namespace {

Schema StreamSchema() {
  return Schema({{"seg", DataType::kInt64}, {"speed", DataType::kInt64}});
}

constexpr Micros kSec = kMicrosPerSecond;

class WindowTest : public ::testing::Test {
 protected:
  WindowTest() : clock_(0) {}

  void Build(TumblingWindowSpec spec, bool with_tick = false) {
    input_ = std::make_shared<Basket>("in", StreamSchema());
    auto out_schema = TumblingWindowOutputSchema(input_->schema(), spec);
    ASSERT_TRUE(out_schema.ok()) << out_schema.status().ToString();
    output_ = std::make_shared<Basket>("out", *out_schema, false);
    if (with_tick) {
      tick_ = std::make_shared<Basket>("tick", Schema({{"epoch", DataType::kTimestamp}}));
    }
    auto f = MakeTumblingWindowFactory("w", input_, output_, std::move(spec),
                                       tick_);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    factory_ = *f;
    sched_ = std::make_unique<Scheduler>(&clock_);
    sched_->Register(factory_);
  }

  void Deliver(Micros at, std::initializer_list<std::pair<int64_t, int64_t>> rows) {
    clock_.SetTime(at);
    Table t(StreamSchema());
    for (const auto& [seg, speed] : rows) {
      ASSERT_TRUE(t.AppendRow({Value(seg), Value(speed)}).ok());
    }
    ASSERT_TRUE(input_->Append(t, at).ok());
    ASSERT_TRUE(sched_->RunUntilQuiescent().ok());
  }

  SimulatedClock clock_;
  BasketPtr input_, output_, tick_;
  FactoryPtr factory_;
  std::unique_ptr<Scheduler> sched_;
};

TumblingWindowSpec AvgSpeedSpec() {
  TumblingWindowSpec spec;
  spec.window_length = 10 * kSec;
  spec.aggregates = {{ops::AggFunc::kAvg, Expr::Col("speed"), "avg_speed"},
                     {ops::AggFunc::kCountStar, nullptr, "n"}};
  return spec;
}

TEST_F(WindowTest, OutputSchemaShape) {
  TumblingWindowSpec spec = AvgSpeedSpec();
  spec.group_by = {{Expr::Col("seg"), "seg"}};
  auto schema = TumblingWindowOutputSchema(Basket("b", StreamSchema()).schema(),
                                           spec);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ToString(),
            "(window_start timestamp, window_end timestamp, seg int, "
            "avg_speed double, n int)");
}

TEST_F(WindowTest, WindowStaysOpenUntilTimePasses) {
  Build(AvgSpeedSpec());
  Deliver(2 * kSec, {{1, 50}});
  Deliver(8 * kSec, {{1, 70}});
  // The [0,10s) window has not closed: nothing emitted, tuples retained.
  EXPECT_EQ(output_->size(), 0u);
  EXPECT_EQ(input_->size(), 2u);
  // A tuple at t=11s closes it.
  Deliver(11 * kSec, {{1, 99}});
  ASSERT_EQ(output_->size(), 1u);
  Table out = output_->Peek();
  EXPECT_EQ(out.GetRow(0)[0], Value(int64_t{0}));
  EXPECT_EQ(out.GetRow(0)[1], Value(10 * kSec));
  EXPECT_EQ(out.GetRow(0)[2], Value(60.0));       // avg(50, 70)
  EXPECT_EQ(out.GetRow(0)[3], Value(int64_t{2}));
  // Only the new-window tuple remains.
  EXPECT_EQ(input_->size(), 1u);
}

TEST_F(WindowTest, MultipleClosedWindowsEmitInOrder) {
  Build(AvgSpeedSpec());
  Deliver(1 * kSec, {{1, 10}});
  clock_.SetTime(35 * kSec);
  Deliver(35 * kSec, {{1, 30}});  // closes [0,10) — and nothing else had data
  ASSERT_EQ(output_->size(), 1u);
  // Backfill: two tuples arrive late in the same batch as a fresh one is
  // impossible (arrival stamped now), so windows close one per batch here.
  Deliver(45 * kSec, {{1, 40}});  // closes [30,40)
  ASSERT_EQ(output_->size(), 2u);
  Table out = output_->Peek();
  EXPECT_EQ(out.GetRow(0)[0], Value(int64_t{0}));
  EXPECT_EQ(out.GetRow(1)[0], Value(30 * kSec));
}

TEST_F(WindowTest, GroupedWindows) {
  TumblingWindowSpec spec = AvgSpeedSpec();
  spec.group_by = {{Expr::Col("seg"), "seg"}};
  Build(std::move(spec));
  Deliver(2 * kSec, {{7, 20}, {8, 60}, {7, 40}});
  Deliver(12 * kSec, {{7, 99}});
  ASSERT_EQ(output_->size(), 2u);
  Table out = output_->Peek();
  // Group rows for seg 7 (avg 30, n 2) and seg 8 (avg 60, n 1).
  std::map<int64_t, std::pair<double, int64_t>> got;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    got[out.GetRow(r)[2].int_value()] = {out.GetRow(r)[3].double_value(),
                                         out.GetRow(r)[4].int_value()};
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[7].first, 30.0);
  EXPECT_EQ(got[7].second, 2);
  EXPECT_DOUBLE_EQ(got[8].first, 60.0);
  EXPECT_EQ(got[8].second, 1);
}

TEST_F(WindowTest, TickClosesWindowWithoutNewTuples) {
  Build(AvgSpeedSpec(), /*with_tick=*/true);
  Metronome metronome("m", tick_, 10 * kSec, 10 * kSec);
  sched_->Register(std::make_shared<Metronome>(metronome));
  Deliver(3 * kSec, {{1, 42}});
  EXPECT_EQ(output_->size(), 0u);
  // No further tuples; the metronome tick at t=10s closes the window.
  clock_.SetTime(10 * kSec);
  ASSERT_TRUE(sched_->RunUntilQuiescent().ok());
  ASSERT_EQ(output_->size(), 1u);
  EXPECT_EQ(output_->Peek().GetRow(0)[3], Value(int64_t{1}));
  EXPECT_EQ(input_->size(), 0u);
}

TEST_F(WindowTest, EmptyWindowsProduceNoRows) {
  Build(AvgSpeedSpec());
  Deliver(2 * kSec, {{1, 10}});
  // Jump far ahead: windows [10,20)... had no tuples; only [0,10) emits.
  Deliver(95 * kSec, {{1, 20}});
  EXPECT_EQ(output_->size(), 1u);
}

TEST_F(WindowTest, RejectsBadSpecs) {
  auto input = std::make_shared<Basket>("in", StreamSchema());
  auto output = std::make_shared<Basket>("out", StreamSchema(), false);
  TumblingWindowSpec spec = AvgSpeedSpec();
  // Wrong output schema.
  EXPECT_FALSE(MakeTumblingWindowFactory("w", input, output, spec).ok());
  // Non-positive window.
  spec.window_length = 0;
  EXPECT_FALSE(MakeTumblingWindowFactory("w", input, output, spec).ok());
  // Basket without arrival column.
  auto no_arrival = std::make_shared<Basket>("na", StreamSchema(), false);
  spec.window_length = kSec;
  EXPECT_FALSE(MakeTumblingWindowFactory("w", no_arrival, output, spec).ok());
}

}  // namespace
}  // namespace datacell::core
