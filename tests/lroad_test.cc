#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.h"
#include "lroad/driver.h"
#include "lroad/generator.h"
#include "lroad/history.h"
#include "lroad/queries.h"
#include "lroad/types.h"
#include "lroad/validator.h"
#include "util/clock.h"

namespace datacell::lroad {
namespace {

// ---------------------------------------------------------------------------
// History
// ---------------------------------------------------------------------------

TEST(HistoryTest, Deterministic) {
  TollHistory a(42), b(42), c(43);
  EXPECT_EQ(a.DailyExpenditure(7, 3, 0), b.DailyExpenditure(7, 3, 0));
  EXPECT_NE(a.DailyExpenditure(7, 3, 0), c.DailyExpenditure(7, 3, 0));
}

TEST(HistoryTest, InRangeAndKeyed) {
  TollHistory h(1);
  for (int64_t vid = 0; vid < 50; ++vid) {
    for (int64_t day = 1; day <= 5; ++day) {
      int64_t v = h.DailyExpenditure(vid, day, 0);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10000);
    }
  }
  EXPECT_NE(h.DailyExpenditure(1, 1, 0), h.DailyExpenditure(1, 2, 0));
  EXPECT_NE(h.DailyExpenditure(1, 1, 0), h.DailyExpenditure(2, 1, 0));
}

TEST(HistoryTest, MaterializeMatchesFunction) {
  TollHistory h(9);
  Table t = h.Materialize(3, 1);
  ASSERT_EQ(t.num_rows(), 3u * kHistoryDays);
  for (size_t i = 0; i < t.num_rows(); ++i) {
    EXPECT_EQ(t.column(3).ints()[i],
              h.DailyExpenditure(t.column(0).ints()[i], t.column(1).ints()[i],
                                 t.column(2).ints()[i]));
  }
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

Generator::Options SmallGen(double sf = 0.05, int duration = 300) {
  Generator::Options o;
  o.scale_factor = sf;
  o.duration_sec = duration;
  o.seed = 11;
  return o;
}

TEST(GeneratorTest, RateCurveShape) {
  Generator g(SmallGen(1.0, kBenchmarkDurationSec));
  // Start around 17/s, end around 1700/s, monotone.
  EXPECT_NEAR(g.TargetRate(0), 17.0, 1.0);
  EXPECT_NEAR(g.TargetRate(kBenchmarkDurationSec), 1700.0, 30.0);
  double prev = 0;
  for (int64_t t = 0; t <= kBenchmarkDurationSec; t += 600) {
    double r = g.TargetRate(t);
    EXPECT_GE(r, prev - 1e-9);
    prev = r;
  }
  // Half the scale factor => half the rate.
  Generator h(SmallGen(0.5, kBenchmarkDurationSec));
  EXPECT_NEAR(h.TargetRate(kBenchmarkDurationSec),
              g.TargetRate(kBenchmarkDurationSec) / 2, 20.0);
}

TEST(GeneratorTest, TuplesAreWellFormed) {
  Generator g(SmallGen());
  uint64_t n = 0;
  while (!g.Done()) {
    Table batch = g.NextSecond();
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      InputTuple t = ReadInput(batch, i);
      EXPECT_TRUE(t.type == 0 || t.type == 2 || t.type == 3);
      EXPECT_EQ(t.time, g.now() - 1);
      EXPECT_GE(t.vid, 0);
      if (t.type == 0) {
        EXPECT_GE(t.speed, 0);
        EXPECT_LE(t.speed, 100);
        EXPECT_GE(t.lane, 0);
        EXPECT_LE(t.lane, 4);
        EXPECT_GE(t.seg, 0);
        EXPECT_LT(t.seg, kSegmentsPerXway);
        EXPECT_GE(t.pos, 0);
        EXPECT_LT(t.pos, kSegmentsPerXway * kFeetPerSegment);
        EXPECT_EQ(t.seg, t.pos / kFeetPerSegment);
      } else {
        EXPECT_GE(t.qid, 0);
      }
      ++n;
    }
  }
  EXPECT_EQ(n, g.tuples_generated());
  EXPECT_GT(n, 0u);
}

TEST(GeneratorTest, Deterministic) {
  Generator a(SmallGen()), b(SmallGen());
  while (!a.Done()) {
    Table ta = a.NextSecond();
    Table tb = b.NextSecond();
    ASSERT_EQ(ta.num_rows(), tb.num_rows());
  }
  EXPECT_EQ(a.tuples_generated(), b.tuples_generated());
}

TEST(GeneratorTest, ReportsEveryThirtySeconds) {
  // Track one car's report times: consecutive reports 30 s apart.
  Generator g(SmallGen(0.05, 200));
  std::map<int64_t, std::vector<int64_t>> reports;
  while (!g.Done()) {
    Table batch = g.NextSecond();
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      InputTuple t = ReadInput(batch, i);
      if (t.type == 0) reports[t.vid].push_back(t.time);
    }
  }
  size_t checked = 0;
  for (const auto& [vid, times] : reports) {
    (void)vid;
    for (size_t i = 1; i < times.size(); ++i) {
      EXPECT_EQ(times[i] - times[i - 1], kReportIntervalSec);
      ++checked;
    }
  }
  EXPECT_GT(checked, 50u);
}

TEST(GeneratorTest, AccidentsProduceStoppedReports) {
  Generator::Options o = SmallGen(0.2, 1800);
  o.accidents_per_hour = 60;  // force some accidents in 30 minutes
  Generator g(o);
  std::map<int64_t, int> zero_speed_streak;
  int max_streak = 0;
  while (!g.Done()) {
    Table batch = g.NextSecond();
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      InputTuple t = ReadInput(batch, i);
      if (t.type != 0) continue;
      int& streak = zero_speed_streak[t.vid];
      streak = t.speed == 0 ? streak + 1 : 0;
      max_streak = std::max(max_streak, streak);
    }
  }
  ASSERT_FALSE(g.injected_accidents().empty());
  // The stopped cars reported >= 4 consecutive zero-speed tuples.
  EXPECT_GE(max_streak, kStoppedReports);
  for (const auto& acc : g.injected_accidents()) {
    EXPECT_GE(acc.clear_time - acc.start_time, 600);
    EXPECT_NE(acc.vid1, acc.vid2);
  }
}

TEST(GeneratorTest, RequestsShareReportingVehicles) {
  Generator::Options o = SmallGen(0.2, 300);
  o.balance_request_prob = 0.2;
  o.expenditure_request_prob = 0.2;
  Generator g(o);
  uint64_t type2 = 0, type3 = 0;
  while (!g.Done()) {
    Table batch = g.NextSecond();
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      InputTuple t = ReadInput(batch, i);
      if (t.type == 2) ++type2;
      if (t.type == 3) {
        ++type3;
        EXPECT_GE(t.day, 1);
        EXPECT_LE(t.day, kHistoryDays);
      }
    }
  }
  EXPECT_GT(type2, 0u);
  EXPECT_GT(type3, 0u);
}

// ---------------------------------------------------------------------------
// Query network with crafted input
// ---------------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : clock_(0), engine_(&clock_) {
    auto net = Network::Create(&engine_, Network::Options{});
    EXPECT_TRUE(net.ok());
    net_ = std::move(net).value();
  }

  void Deliver(const std::vector<InputTuple>& tuples) {
    Table batch(InputSchema());
    for (const InputTuple& t : tuples) AppendInput(t, &batch);
    ASSERT_TRUE(net_->DeliverInput(batch).ok());
    ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  }

  static InputTuple Report(int64_t time, int64_t vid, int64_t speed,
                           int64_t seg, int64_t pos, int64_t lane = 1,
                           int64_t dir = 0) {
    InputTuple t;
    t.type = 0;
    t.time = time;
    t.vid = vid;
    t.speed = speed;
    t.lane = lane;
    t.dir = dir;
    t.seg = seg;
    t.pos = pos;
    return t;
  }

  SimulatedClock clock_;
  core::Engine engine_;
  std::unique_ptr<Network> net_;
};

TEST_F(NetworkTest, AccidentDetectionNeedsFourReports) {
  const int64_t pos = 10 * kFeetPerSegment + 100;
  // Two cars stopped at the same position; 3 reports are not enough.
  for (int r = 0; r < 3; ++r) {
    Deliver({Report(r * 30, 1, 0, 10, pos), Report(r * 30, 2, 0, 10, pos)});
  }
  EXPECT_EQ(net_->num_active_accidents(), 0u);
  // Fourth report triggers the accident.
  Deliver({Report(90, 1, 0, 10, pos), Report(90, 2, 0, 10, pos)});
  EXPECT_EQ(net_->num_active_accidents(), 1u);
}

TEST_F(NetworkTest, SingleStoppedCarIsNoAccident) {
  const int64_t pos = 5 * kFeetPerSegment;
  for (int r = 0; r < 6; ++r) {
    Deliver({Report(r * 30, 1, 0, 5, pos)});
  }
  EXPECT_EQ(net_->num_active_accidents(), 0u);
}

TEST_F(NetworkTest, AccidentClearsWhenCarMoves) {
  const int64_t pos = 10 * kFeetPerSegment + 100;
  for (int r = 0; r < 4; ++r) {
    Deliver({Report(r * 30, 1, 0, 10, pos), Report(r * 30, 2, 0, 10, pos)});
  }
  ASSERT_EQ(net_->num_active_accidents(), 1u);
  // Car 1 moves on.
  Deliver({Report(120, 1, 50, 11, pos + kFeetPerSegment)});
  EXPECT_EQ(net_->num_active_accidents(), 0u);
}

TEST_F(NetworkTest, AccidentAlertForUpstreamCrossing) {
  const int64_t pos = 20 * kFeetPerSegment + 50;
  for (int r = 0; r < 4; ++r) {
    Deliver({Report(r * 30, 1, 0, 20, pos), Report(r * 30, 2, 0, 20, pos)});
  }
  ASSERT_EQ(net_->num_active_accidents(), 1u);
  // A third car enters segment 17 (within 4 segments upstream, dir 0).
  Deliver({Report(120, 3, 55, 17, 17 * kFeetPerSegment + 10)});
  Table alerts = net_->alerts()->TakeAll();
  bool found = false;
  for (size_t i = 0; i < alerts.num_rows(); ++i) {
    if (alerts.column(0).ints()[i] == 1 && alerts.column(1).ints()[i] == 3) {
      found = true;
      EXPECT_EQ(alerts.column(5).ints()[i], 20);  // accident segment
      EXPECT_EQ(alerts.column(7).ints()[i], 0);   // no toll
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(NetworkTest, NoAlertOutsideAccidentZone) {
  const int64_t pos = 20 * kFeetPerSegment + 50;
  for (int r = 0; r < 4; ++r) {
    Deliver({Report(r * 30, 1, 0, 20, pos), Report(r * 30, 2, 0, 20, pos)});
  }
  net_->alerts()->Clear();
  // Segment 14 is 6 segments upstream: outside the 4-segment zone; and
  // segment 22 is past the accident.
  Deliver({Report(120, 3, 55, 14, 14 * kFeetPerSegment),
           Report(120, 4, 55, 22, 22 * kFeetPerSegment)});
  Table alerts = net_->alerts()->TakeAll();
  for (size_t i = 0; i < alerts.num_rows(); ++i) {
    EXPECT_EQ(alerts.column(0).ints()[i], 0) << "unexpected accident alert";
  }
}

TEST_F(NetworkTest, TollChargedWhenCongested) {
  // Minute 0: 60 distinct slow cars in segment 3 -> toll for minute 1.
  std::vector<InputTuple> m0;
  for (int64_t v = 0; v < 60; ++v) {
    m0.push_back(Report(10, 100 + v, 20, 3, 3 * kFeetPerSegment + v));
  }
  Deliver(m0);
  // First report of minute 1 flushes minute 0's statistics (Q2->Q3).
  Deliver({Report(60, 999, 20, 2, 2 * kFeetPerSegment)});
  net_->alerts()->Clear();
  // A car crosses into segment 3 during minute 1: LAV=20<40, cars=60>50
  // -> toll = 2*(60-50)^2 = 200.
  Deliver({Report(70, 500, 30, 3, 3 * kFeetPerSegment + 999)});
  Table alerts = net_->alerts()->TakeAll();
  bool found = false;
  for (size_t i = 0; i < alerts.num_rows(); ++i) {
    if (alerts.column(1).ints()[i] == 500) {
      found = true;
      EXPECT_EQ(alerts.column(0).ints()[i], 0);
      EXPECT_EQ(alerts.column(7).ints()[i], 200);
      EXPECT_EQ(alerts.column(6).ints()[i], 20);  // LAV
    }
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(net_->account_balance(500), 200);
}

TEST_F(NetworkTest, NoTollWhenFast) {
  // 60 fast cars (LAV >= 40): no toll.
  std::vector<InputTuple> m0;
  for (int64_t v = 0; v < 60; ++v) {
    m0.push_back(Report(10, 100 + v, 80, 3, 3 * kFeetPerSegment + v));
  }
  Deliver(m0);
  Deliver({Report(60, 999, 80, 2, 2 * kFeetPerSegment)});
  net_->alerts()->Clear();
  Deliver({Report(70, 500, 30, 3, 3 * kFeetPerSegment + 999)});
  Table alerts = net_->alerts()->TakeAll();
  for (size_t i = 0; i < alerts.num_rows(); ++i) {
    if (alerts.column(1).ints()[i] == 500) {
      EXPECT_EQ(alerts.column(7).ints()[i], 0);
    }
  }
  EXPECT_EQ(net_->account_balance(500), 0);
}

TEST_F(NetworkTest, NoTollWhenFewCars) {
  // Slow but only 10 cars: below the 50-car threshold.
  std::vector<InputTuple> m0;
  for (int64_t v = 0; v < 10; ++v) {
    m0.push_back(Report(10, 100 + v, 20, 3, 3 * kFeetPerSegment + v));
  }
  Deliver(m0);
  Deliver({Report(60, 999, 20, 2, 2 * kFeetPerSegment)});
  Deliver({Report(70, 500, 30, 3, 3 * kFeetPerSegment + 999)});
  EXPECT_EQ(net_->account_balance(500), 0);
}

TEST_F(NetworkTest, NoRepeatedTollWithinSegment) {
  std::vector<InputTuple> m0;
  for (int64_t v = 0; v < 60; ++v) {
    m0.push_back(Report(10, 100 + v, 20, 3, 3 * kFeetPerSegment + v));
  }
  Deliver(m0);
  Deliver({Report(60, 999, 20, 2, 2 * kFeetPerSegment)});
  // Two reports inside the same segment: charged once.
  Deliver({Report(70, 500, 20, 3, 3 * kFeetPerSegment + 10)});
  Deliver({Report(100, 500, 20, 3, 3 * kFeetPerSegment + 500)});
  EXPECT_EQ(net_->account_balance(500), 200);
}

TEST_F(NetworkTest, BalanceRequestAnswered) {
  InputTuple q;
  q.type = 2;
  q.time = 11;
  q.vid = 77;
  q.qid = 9001;
  Deliver({q});
  Table answers = net_->balance_answers()->TakeAll();
  ASSERT_EQ(answers.num_rows(), 1u);
  EXPECT_EQ(answers.column(0).ints()[0], 9001);
  EXPECT_EQ(answers.column(3).ints()[0], 77);
  EXPECT_EQ(answers.column(4).ints()[0], 0);  // no tolls yet
}

TEST_F(NetworkTest, ExpenditureRequestAnswered) {
  InputTuple q;
  q.type = 3;
  q.time = 11;
  q.vid = 42;
  q.qid = 9002;
  q.day = 7;
  q.xway = 0;
  Deliver({q});
  Table answers = net_->expenditure_answers()->TakeAll();
  ASSERT_EQ(answers.num_rows(), 1u);
  EXPECT_EQ(answers.column(0).ints()[0], 9002);
  EXPECT_EQ(answers.column(6).ints()[0],
            net_->history().DailyExpenditure(42, 7, 0));
}

TEST_F(NetworkTest, ExitLaneCarsIgnoredForStats) {
  std::vector<InputTuple> m0;
  for (int64_t v = 0; v < 60; ++v) {
    m0.push_back(Report(10, 100 + v, 20, 3, 3 * kFeetPerSegment + v,
                        /*lane=*/kLaneExit));
  }
  Deliver(m0);
  Deliver({Report(60, 999, 20, 2, 2 * kFeetPerSegment)});
  Deliver({Report(70, 500, 30, 3, 3 * kFeetPerSegment + 999)});
  // Exit-lane cars did not count toward the 50-car threshold.
  EXPECT_EQ(net_->account_balance(500), 0);
}

// ---------------------------------------------------------------------------
// End-to-end driver run + validation
// ---------------------------------------------------------------------------

TEST(DriverTest, ShortRunValidates) {
  Driver::Options opts;
  opts.generator.scale_factor = 0.3;
  opts.generator.duration_sec = 1200;  // 20 simulated minutes
  opts.generator.seed = 5;
  opts.generator.accidents_per_hour = 30;
  opts.generator.balance_request_prob = 0.02;
  opts.generator.expenditure_request_prob = 0.01;
  opts.sample_every_sec = 60;
  opts.q7_window_tuples = 5000;

  auto report = Driver::Run(opts, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_GT(report->total_tuples, 10000u);
  EXPECT_GT(report->toll_notifications, 0u);
  EXPECT_GT(report->balance_answers, 0u);
  EXPECT_GT(report->expenditure_answers, 0u);
  EXPECT_EQ(report->arrival_rate.size(), 20u);
  EXPECT_EQ(report->collection_load[6].size(), 20u);
  EXPECT_FALSE(report->q7_response.empty());
  EXPECT_EQ(report->deadline_violations, 0u);

  ValidationReport v = Validate(*report);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0]);
  EXPECT_GT(v.balances_checked, 0u);
  EXPECT_GT(v.expenditures_checked, 0u);
  if (v.detectable_accidents > 0) {
    EXPECT_GE(v.DetectionRatio(), 0.5)
        << v.detected_accidents << "/" << v.detectable_accidents;
  }
}

TEST(DriverTest, DeterministicAcrossRuns) {
  Driver::Options opts;
  opts.generator.scale_factor = 0.15;
  opts.generator.duration_sec = 600;
  opts.generator.seed = 21;
  auto a = Driver::Run(opts, nullptr);
  auto b = Driver::Run(opts, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_tuples, b->total_tuples);
  EXPECT_EQ(a->toll_notifications, b->toll_notifications);
  EXPECT_EQ(a->accident_alerts, b->accident_alerts);
  EXPECT_EQ(a->balance_answers, b->balance_answers);
  EXPECT_EQ(a->expenditure_answers, b->expenditure_answers);
  EXPECT_EQ(a->final_balances, b->final_balances);
}

TEST(DriverTest, MultipleExpressways) {
  Driver::Options opts;
  opts.generator.scale_factor = 0.2;
  opts.generator.duration_sec = 900;
  opts.generator.num_xways = 3;
  opts.generator.seed = 8;
  auto report = Driver::Run(opts, nullptr);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->toll_notifications, 0u);
  ValidationReport v = Validate(*report);
  EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors[0]);
  // Accidents are scattered across expressways.
  std::set<int64_t> xways;
  for (const auto& acc : report->injected_accidents) xways.insert(acc.xway);
  if (report->injected_accidents.size() >= 4) {
    EXPECT_GT(xways.size(), 1u);
  }
}

TEST_F(NetworkTest, AccidentLifecycleEndToEnd) {
  // Drive generator output straight through the network and confirm the
  // network's accident set goes up during the generator's accident window
  // and back down after clearance.
  Generator::Options gopts = SmallGen(0.3, 1500);
  gopts.accidents_per_hour = 120;  // make one early accident very likely
  Generator gen(gopts);
  bool saw_active = false;
  while (!gen.Done()) {
    clock_.SetTime((gen.now() + 1) * 1'000'000);
    Table batch = gen.NextSecond();
    ASSERT_TRUE(net_->DeliverInput(batch).ok());
    ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
    if (net_->num_active_accidents() > 0) saw_active = true;
  }
  ASSERT_FALSE(gen.injected_accidents().empty());
  EXPECT_TRUE(saw_active);
  // Accidents whose cars resumed well before the end of the run must have
  // been cleared; only late accidents (cars still stopped, or resume
  // reports cut off by the end of input) may remain tracked.
  size_t may_remain = 0;
  for (const auto& acc : gen.injected_accidents()) {
    if (acc.clear_time + 3 * kReportIntervalSec >= gopts.duration_sec) {
      ++may_remain;
    }
  }
  EXPECT_LE(net_->num_active_accidents(), may_remain);
}

TEST(DriverTest, ArrivalRateRamps) {
  Driver::Options opts;
  opts.generator.scale_factor = 0.2;
  opts.generator.duration_sec = 900;
  opts.sample_every_sec = 300;
  auto report = Driver::Run(opts, nullptr);
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->arrival_rate.size(), 3u);
  // Later samples see a strictly higher rate (the Fig 8 ramp).
  EXPECT_GT(report->arrival_rate.back().second,
            report->arrival_rate.front().second);
}

}  // namespace
}  // namespace datacell::lroad
