#include <gtest/gtest.h>

#include "column/catalog.h"
#include "column/column.h"
#include "column/table.h"
#include "column/type.h"
#include "column/value.h"

namespace datacell {
namespace {

TEST(TypeTest, NamesRoundTrip) {
  for (DataType t : {DataType::kInt64, DataType::kDouble, DataType::kBool,
                     DataType::kString, DataType::kTimestamp}) {
    auto r = DataTypeFromName(DataTypeName(t));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, t);
  }
}

TEST(TypeTest, SqlSynonyms) {
  EXPECT_EQ(*DataTypeFromName("INTEGER"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("varchar"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("REAL"), DataType::kDouble);
  EXPECT_FALSE(DataTypeFromName("blob").ok());
}

TEST(SchemaTest, FindAndDuplicate) {
  Schema s;
  ASSERT_TRUE(s.AddField({"a", DataType::kInt64}).ok());
  ASSERT_TRUE(s.AddField({"b", DataType::kString}).ok());
  EXPECT_EQ(s.FindField("b"), 1);
  EXPECT_EQ(s.FindField("c"), -1);
  EXPECT_EQ(s.AddField({"a", DataType::kDouble}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(s.ToString(), "(a int, b string)");
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(1).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, MatchesType) {
  EXPECT_TRUE(Value(1).MatchesType(DataType::kInt64));
  EXPECT_TRUE(Value(1).MatchesType(DataType::kTimestamp));
  EXPECT_TRUE(Value(1).MatchesType(DataType::kDouble));  // widening
  EXPECT_FALSE(Value(1.5).MatchesType(DataType::kInt64));
  EXPECT_TRUE(Value::Null().MatchesType(DataType::kString));
}

TEST(ValueTest, CastTo) {
  EXPECT_EQ(Value(3.9).CastTo(DataType::kInt64)->int_value(), 3);
  EXPECT_DOUBLE_EQ(Value(3).CastTo(DataType::kDouble)->double_value(), 3.0);
  EXPECT_FALSE(Value("x").CastTo(DataType::kInt64).ok());
  EXPECT_TRUE(Value::Null().CastTo(DataType::kBool)->is_null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(ColumnTest, TypedAppendAndRead) {
  Column c(DataType::kInt64);
  c.AppendInt(1);
  c.AppendInt(2);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ints()[1], 2);
  EXPECT_EQ(c.GetValue(0), Value(1));
}

TEST(ColumnTest, NullsLazyValidity) {
  Column c(DataType::kDouble);
  c.AppendDouble(1.0);
  EXPECT_FALSE(c.has_nulls());
  c.AppendNull();
  EXPECT_TRUE(c.has_nulls());
  EXPECT_TRUE(c.IsValid(0));
  EXPECT_FALSE(c.IsValid(1));
  c.AppendDouble(2.0);
  EXPECT_TRUE(c.IsValid(2));
  EXPECT_TRUE(c.GetValue(1).is_null());
}

TEST(ColumnTest, AppendValueChecksType) {
  Column c(DataType::kBool);
  EXPECT_TRUE(c.AppendValue(Value(true)).ok());
  EXPECT_EQ(c.AppendValue(Value(1)).code(), StatusCode::kTypeMismatch);
  EXPECT_TRUE(c.AppendValue(Value::Null()).ok());
  EXPECT_EQ(c.size(), 2u);
}

TEST(ColumnTest, IntWidensToDouble) {
  Column c(DataType::kDouble);
  ASSERT_TRUE(c.AppendValue(Value(7)).ok());
  EXPECT_DOUBLE_EQ(c.doubles()[0], 7.0);
}

TEST(ColumnTest, AppendColumnPropagatesNulls) {
  Column a(DataType::kInt64);
  a.AppendInt(1);
  Column b(DataType::kInt64);
  b.AppendNull();
  b.AppendInt(3);
  ASSERT_TRUE(a.AppendColumn(b).ok());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.IsValid(0));
  EXPECT_FALSE(a.IsValid(1));
  EXPECT_TRUE(a.IsValid(2));
}

TEST(ColumnTest, AppendColumnTypeMismatch) {
  Column a(DataType::kInt64);
  Column b(DataType::kString);
  EXPECT_EQ(a.AppendColumn(b).code(), StatusCode::kTypeMismatch);
}

TEST(ColumnTest, TakeReordersAndDuplicates) {
  Column c(DataType::kString);
  c.AppendString("a");
  c.AppendString("b");
  c.AppendString("c");
  Column t = c.Take({2, 0, 2});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.strings()[0], "c");
  EXPECT_EQ(t.strings()[1], "a");
  EXPECT_EQ(t.strings()[2], "c");
}

TEST(ColumnTest, EraseRowsSinglePassShift) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 10; ++i) c.AppendInt(i);
  c.EraseRows({0, 3, 4, 9});
  ASSERT_EQ(c.size(), 6u);
  std::vector<int64_t> expect = {1, 2, 5, 6, 7, 8};
  EXPECT_EQ(c.ints(), expect);
}

TEST(ColumnTest, EraseRowsEmptySelection) {
  Column c(DataType::kInt64);
  c.AppendInt(5);
  c.EraseRows({});
  EXPECT_EQ(c.size(), 1u);
}

TEST(ColumnTest, EraseRowsWithNulls) {
  Column c(DataType::kInt64);
  c.AppendInt(0);
  c.AppendNull();
  c.AppendInt(2);
  c.EraseRows({0});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.IsValid(0));
  EXPECT_TRUE(c.IsValid(1));
  EXPECT_EQ(c.ints()[1], 2);
}

TEST(ColumnTest, KeepRows) {
  Column c(DataType::kInt64);
  for (int i = 0; i < 6; ++i) c.AppendInt(i * 10);
  c.KeepRows({1, 4});
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.ints()[0], 10);
  EXPECT_EQ(c.ints()[1], 40);
}

Schema TwoColSchema() {
  return Schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
}

TEST(TableTest, AppendRowAndGetRow) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value(1), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value(2), Value("y")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  Row r = t.GetRow(1);
  EXPECT_EQ(r[0], Value(2));
  EXPECT_EQ(r[1], Value("y"));
}

TEST(TableTest, AppendRowArityMismatch) {
  Table t(TwoColSchema());
  EXPECT_EQ(t.AppendRow({Value(1)}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendRowTypeMismatchLeavesAligned) {
  Table t(TwoColSchema());
  // Second value has wrong type; no column may be modified.
  EXPECT_EQ(t.AppendRow({Value(1), Value(2)}).code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.column(0).size(), t.column(1).size());
}

TEST(TableTest, ColumnLookup) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.GetColumn("b").ok());
  EXPECT_EQ(t.GetColumn("zz").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, AppendTableAndRows) {
  Table a(TwoColSchema());
  ASSERT_TRUE(a.AppendRow({Value(1), Value("x")}).ok());
  Table b(TwoColSchema());
  ASSERT_TRUE(b.AppendRow({Value(2), Value("y")}).ok());
  ASSERT_TRUE(b.AppendRow({Value(3), Value("z")}).ok());
  ASSERT_TRUE(a.AppendTable(b).ok());
  EXPECT_EQ(a.num_rows(), 3u);
  ASSERT_TRUE(a.AppendTableRows(b, {1}).ok());
  EXPECT_EQ(a.num_rows(), 4u);
  EXPECT_EQ(a.GetRow(3)[0], Value(3));
}

TEST(TableTest, EraseRowsValidation) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value(1), Value("x")}).ok());
  EXPECT_EQ(t.EraseRows({5}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.EraseRows({0, 0}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.EraseRows({0}).ok());
  EXPECT_TRUE(t.empty());
}

TEST(TableTest, TakeProducesAlignedRows) {
  Table t(TwoColSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i), Value(std::string(1, 'a' + i))}).ok());
  }
  Table s = t.Take({4, 1});
  ASSERT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.GetRow(0)[0], Value(4));
  EXPECT_EQ(s.GetRow(0)[1], Value("e"));
  EXPECT_EQ(s.GetRow(1)[0], Value(1));
}

TEST(TableTest, ClearKeepsSchema) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({Value(1), Value("x")}).ok());
  t.Clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_columns(), 2u);
  ASSERT_TRUE(t.AppendRow({Value(2), Value("y")}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog cat;
  auto t = cat.CreateTable("t1", TwoColSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(cat.HasTable("t1"));
  EXPECT_EQ(cat.CreateTable("t1", TwoColSchema()).status().code(),
            StatusCode::kAlreadyExists);
  auto got = cat.GetTable("t1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), t->get());
  ASSERT_TRUE(cat.DropTable("t1").ok());
  EXPECT_FALSE(cat.HasTable("t1"));
  EXPECT_EQ(cat.DropTable("t1").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ListSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("zz", TwoColSchema()).ok());
  ASSERT_TRUE(cat.CreateTable("aa", TwoColSchema()).ok());
  auto names = cat.ListTables();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "aa");
  EXPECT_EQ(names[1], "zz");
}

// Property-style sweep: EraseRows followed by KeepRows of the complement
// partitions the rows for any deletion mask.
class ErasePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ErasePropertyTest, EraseAndKeepPartition) {
  const int mask_seed = GetParam();
  const size_t n = 32;
  Column base(DataType::kInt64);
  for (size_t i = 0; i < n; ++i) base.AppendInt(static_cast<int64_t>(i));

  SelVector erase, keep;
  for (size_t i = 0; i < n; ++i) {
    if (((mask_seed >> (i % 16)) ^ i) & 1) {
      erase.push_back(static_cast<uint32_t>(i));
    } else {
      keep.push_back(static_cast<uint32_t>(i));
    }
  }
  Column erased = base;
  erased.EraseRows(erase);
  Column kept = base;
  kept.KeepRows(keep);
  ASSERT_EQ(erased.size(), kept.size());
  for (size_t i = 0; i < erased.size(); ++i) {
    EXPECT_EQ(erased.ints()[i], kept.ints()[i]);
  }
  EXPECT_EQ(erased.size() + erase.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Masks, ErasePropertyTest,
                         ::testing::Values(0, 1, 0x5555, 0xAAAA, 0x1234, 0xFFFF,
                                           42, 777));

}  // namespace
}  // namespace datacell
