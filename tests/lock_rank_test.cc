// Tests for the debug lock-rank checker (util/lock_rank.h) and the
// annotated mutex wrappers it rides on. The violation cases are death
// tests: the checker's contract is "abort with both stacks", and the
// tests document exactly which acquisition patterns trip it. All of them
// skip when the checker is compiled out (non-Debug builds without
// -DDATACELL_LOCK_RANK=ON).

#include "util/mutex.h"

#include <gtest/gtest.h>

#include "core/basket.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

// The deliberate-violation helpers are exempt from the compile-time
// analysis: clang would (correctly) reject them for the same reason the
// runtime checker aborts on them.
void ReenterRecursive(RecursiveMutex* m) DC_NO_THREAD_SAFETY_ANALYSIS {
  m->Lock();
  m->Lock();
  m->Unlock();
  m->Unlock();
}

void ReenterPlain(Mutex* m) DC_NO_THREAD_SAFETY_ANALYSIS {
  m->Lock();
  m->Lock();  // checker aborts here; without it this would deadlock
  m->Unlock();
  m->Unlock();
}

// Runs in a death-test child that aborts at the second acquisition, so the
// locks are intentionally never released.
void LockDescendingAddresses(const core::Basket* hi, const core::Basket* lo)
    DC_NO_THREAD_SAFETY_ANALYSIS {
  hi->Lock();
  lo->Lock();
}

TEST(LockRankTest, DecreasingRankOrderPasses) {
  // The full documented hierarchy, outermost first: basket, scheduler,
  // actuator, engine, catalog, logging.
  Mutex basket(LockRank::kBasket);
  Mutex scheduler(LockRank::kScheduler);
  Mutex actuator(LockRank::kActuator);
  Mutex engine(LockRank::kEngine);
  Mutex catalog(LockRank::kCatalog);
  Mutex logging(LockRank::kLogging);
  MutexLock a(&basket);
  MutexLock b(&scheduler);
  MutexLock c(&actuator);
  MutexLock d(&engine);
  MutexLock e(&catalog);
  MutexLock f(&logging);
}

TEST(LockRankTest, RankSkippingPasses) {
  // Decreasing order does not require visiting every level.
  Mutex basket(LockRank::kBasket);
  Mutex catalog(LockRank::kCatalog);
  MutexLock a(&basket);
  MutexLock b(&catalog);
}

TEST(LockRankTest, RecursiveReentryPasses) {
  RecursiveMutex m(LockRank::kBasket);
  ReenterRecursive(&m);
}

TEST(LockRankTest, BasketsInAscendingAddressOrderPass) {
  core::Basket a("a", StreamSchema());
  core::Basket b("b", StreamSchema());
  const core::Basket* lo = &a < &b ? &a : &b;
  const core::Basket* hi = &a < &b ? &b : &a;
  lo->Lock();
  hi->Lock();
  // Release order is unconstrained; exercise out-of-stack-order release.
  lo->Unlock();
  hi->Unlock();
}

TEST(LockRankTest, ReleaseAndReacquirePasses) {
  // The scheduler worker-loop shape: take a low-ranked lock, drop it for
  // the firing (which takes basket locks), retake it.
  Mutex scheduler(LockRank::kScheduler);
  core::Basket basket("p", StreamSchema());
  MutexLock lock(&scheduler);
  lock.Unlock();
  {
    core::BasketLock firing(&basket);
  }
  lock.Lock();
}

TEST(LockRankDeathTest, HierarchyInversionAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "lock-rank checker compiled out";
  Mutex catalog(LockRank::kCatalog);
  Mutex scheduler(LockRank::kScheduler);
  EXPECT_DEATH(
      {
        MutexLock inner(&catalog);
        MutexLock outer(&scheduler);  // ascending rank: inversion
      },
      "hierarchy inversion");
}

TEST(LockRankDeathTest, BasketThenEngineThenBasketAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "lock-rank checker compiled out";
  // The realistic mistake: calling back into a basket while holding the
  // engine registry lock.
  Mutex engine(LockRank::kEngine);
  core::Basket basket("p", StreamSchema());
  EXPECT_DEATH(
      {
        MutexLock registry(&engine);
        core::BasketLock cb(&basket);
      },
      "hierarchy inversion");
}

TEST(LockRankDeathTest, BasketsInDescendingAddressOrderAbort) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "lock-rank checker compiled out";
  core::Basket a("a", StreamSchema());
  core::Basket b("b", StreamSchema());
  const core::Basket* lo = &a < &b ? &a : &b;
  const core::Basket* hi = &a < &b ? &b : &a;
  EXPECT_DEATH(LockDescendingAddresses(hi, lo), "same-rank order violation");
}

TEST(LockRankDeathTest, PlainMutexReentryAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "lock-rank checker compiled out";
  Mutex m(LockRank::kEngine);
  EXPECT_DEATH(ReenterPlain(&m), "self-deadlock");
}

TEST(LockRankDeathTest, UnheldReleaseAborts) {
  if (!lock_rank::Enabled()) GTEST_SKIP() << "lock-rank checker compiled out";
  int dummy = 0;
  EXPECT_DEATH(lock_rank::NoteRelease(&dummy), "does not hold");
}

}  // namespace
}  // namespace datacell
