// Failure injection: error paths, malformed input, flow control, and
// runaway-protection across the stack.

#include <gtest/gtest.h>

#include <thread>

#include "core/basket.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "net/codec.h"
#include "net/gateway.h"
#include "net/socket.h"
#include "sql/session.h"
#include "util/clock.h"

namespace datacell {
namespace {

Schema StreamSchema() {
  return Schema({{"tag", DataType::kTimestamp}, {"payload", DataType::kInt64}});
}

Table OneTuple(int64_t payload) {
  Table t(StreamSchema());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{0}), Value(payload)}).ok());
  return t;
}

// ---------------------------------------------------------------------------
// Scheduler / factory errors
// ---------------------------------------------------------------------------

TEST(FactoryFailureTest, BodyErrorPropagatesThroughScheduler) {
  SimulatedClock clock;
  auto in = std::make_shared<core::Basket>("in", StreamSchema());
  auto f = std::make_shared<core::Factory>(
      "bad", [](core::FactoryContext&) -> Status {
        return Status::IOError("downstream device on fire");
      });
  f->AddInput(in);
  core::Scheduler sched(&clock);
  sched.Register(f);
  ASSERT_TRUE(in->Append(OneTuple(1), 0).ok());
  auto result = sched.RunUntilQuiescent();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  // The failed firing still counted; the input was not silently dropped
  // beyond what the body consumed.
  EXPECT_EQ(f->stats().firings, 0u);
}

TEST(FactoryFailureTest, ErrorDoesNotCorruptOtherFactories) {
  SimulatedClock clock;
  auto in_good = std::make_shared<core::Basket>("g", StreamSchema());
  auto in_bad = std::make_shared<core::Basket>("b", StreamSchema());
  auto out = std::make_shared<core::Basket>("o", in_good->schema(), false);
  auto good = std::make_shared<core::Factory>(
      "good", [out](core::FactoryContext& ctx) -> Status {
        Table t = ctx.input(0).TakeAll();
        ASSIGN_OR_RETURN(size_t n, out->AppendAligned(t, ctx.now()));
        (void)n;
        return Status::OK();
      });
  good->AddInput(in_good);
  good->AddOutput(out);
  auto bad = std::make_shared<core::Factory>(
      "bad", [](core::FactoryContext&) -> Status {
        return Status::Internal("boom");
      });
  bad->AddInput(in_bad);
  core::Scheduler sched(&clock);
  sched.Register(good);  // registered first: runs before the bad one
  sched.Register(bad);
  ASSERT_TRUE(in_good->Append(OneTuple(1), 0).ok());
  ASSERT_TRUE(in_bad->Append(OneTuple(2), 0).ok());
  EXPECT_FALSE(sched.RunUntilQuiescent().ok());
  // The good factory's work completed before the error surfaced.
  EXPECT_EQ(out->size(), 1u);
}

TEST(SchedulerFailureTest, MaxRoundsStopsRunawayLoop) {
  // A factory that always regenerates its own input would loop forever;
  // the max_rounds guard must bound it.
  SimulatedClock clock;
  auto b = std::make_shared<core::Basket>("b", StreamSchema());
  auto f = std::make_shared<core::Factory>(
      "perpetual", [b](core::FactoryContext& ctx) -> Status {
        Table t = b->TakeAll();
        ASSIGN_OR_RETURN(size_t n, b->AppendAligned(t, ctx.now()));
        (void)n;
        return Status::OK();
      });
  f->AddInput(b);
  f->AddOutput(b);
  core::Scheduler sched(&clock);
  sched.Register(f);
  ASSERT_TRUE(b->Append(OneTuple(1), 0).ok());
  auto rounds = sched.RunUntilQuiescent(/*max_rounds=*/25);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(*rounds, 25u);
}

TEST(EmitterFailureTest, SinkErrorPropagates) {
  SimulatedClock clock;
  auto b = std::make_shared<core::Basket>("b", StreamSchema());
  core::Emitter e("e", [](const Table&) -> Status {
    return Status::IOError("client hung up");
  });
  e.AddInput(b);
  ASSERT_TRUE(b->Append(OneTuple(1), 0).ok());
  auto result = e.Fire(0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(EmitterFailureTest, SinkFailureLosesNoTuplesAndCountsHonestly) {
  // Regression: the emitter used to count a batch as emitted before the
  // sink call, so a sink failure both inflated tuples_emitted() and lost
  // the batch (TakeAll had already drained the basket). Now a failed batch
  // is staged, retried before new input, and counted only on success.
  auto b = std::make_shared<core::Basket>("b", StreamSchema());
  int failures_left = 2;
  std::vector<int64_t> delivered;
  core::Emitter e("e_zeroloss", [&](const Table& batch) -> Status {
    if (failures_left > 0) {
      --failures_left;
      return Status::IOError("transient sink outage");
    }
    for (int64_t v : batch.column(1).ints()) delivered.push_back(v);
    return Status::OK();
  });
  e.AddInput(b);

  ASSERT_TRUE(b->Append(OneTuple(1), 0).ok());
  ASSERT_TRUE(b->Append(OneTuple(2), 0).ok());
  // First firing: sink fails. Nothing emitted, the batch is staged, the
  // count stays honest.
  ASSERT_FALSE(e.Fire(0).ok());
  EXPECT_EQ(e.tuples_emitted(), 0u);
  EXPECT_EQ(e.sink_errors(), 1u);
  EXPECT_EQ(e.tuples_pending(), 2u);
  EXPECT_EQ(b->size(), 0u);       // input was drained into the stage
  EXPECT_TRUE(e.CanFire(0));      // staged work keeps the transition hot

  // More input arrives while the staged batch waits.
  ASSERT_TRUE(b->Append(OneTuple(3), 0).ok());
  // Second firing: the staged retry fails again, before any new input is
  // taken — tuple 3 stays safely in the basket.
  ASSERT_FALSE(e.Fire(0).ok());
  EXPECT_EQ(e.sink_errors(), 2u);
  EXPECT_EQ(e.tuples_pending(), 2u);
  EXPECT_EQ(b->size(), 1u);

  // Third firing: the sink recovers. The staged batch goes out first, then
  // the new input — FIFO order, zero loss, counts match deliveries.
  ASSERT_TRUE(e.Fire(0).ok());
  EXPECT_EQ(e.tuples_emitted(), 3u);
  EXPECT_EQ(e.tuples_pending(), 0u);
  EXPECT_EQ(b->size(), 0u);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[0], 1);
  EXPECT_EQ(delivered[1], 2);
  EXPECT_EQ(delivered[2], 3);
  EXPECT_FALSE(e.CanFire(0));
}

TEST(ReceptorFailureTest, SourceErrorPropagates) {
  auto r = std::make_shared<core::Receptor>(
      "r", []() -> Result<std::optional<Table>> {
        return Status::IOError("device detached");
      });
  r->AddOutput(std::make_shared<core::Basket>("b", StreamSchema()));
  EXPECT_FALSE(r->Fire(0).ok());
}

// ---------------------------------------------------------------------------
// Basket misuse and flow control
// ---------------------------------------------------------------------------

TEST(BasketFailureTest, ArityMismatchRejected) {
  core::Basket b("b", StreamSchema());
  Table wrong(Schema({{"x", DataType::kInt64}}));
  ASSERT_TRUE(wrong.AppendRow({Value(1)}).ok());
  EXPECT_EQ(b.Append(wrong, 0).status().code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(b.AppendAligned(wrong, 0).status().code(),
            StatusCode::kTypeMismatch);
  EXPECT_EQ(b.size(), 0u);
}

TEST(BasketFailureTest, EraseOutOfRangeRejected) {
  core::Basket b("b", StreamSchema());
  ASSERT_TRUE(b.Append(OneTuple(1), 0).ok());
  EXPECT_FALSE(b.EraseRows({7}).ok());
  EXPECT_EQ(b.size(), 1u);  // untouched
}

TEST(BasketFailureTest, DisableMidStreamDebugging) {
  // §3.3 Basket Control: selectively disabling a basket blocks the stream
  // (drops are silent) and re-enabling resumes it.
  core::Basket b("b", StreamSchema());
  ASSERT_TRUE(b.Append(OneTuple(1), 0).ok());
  b.Disable();
  ASSERT_TRUE(b.Append(OneTuple(2), 0).ok());
  ASSERT_TRUE(b.Append(OneTuple(3), 0).ok());
  b.Enable();
  ASSERT_TRUE(b.Append(OneTuple(4), 0).ok());
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.stats().dropped, 2u);
  Table t = b.Peek();
  EXPECT_EQ(t.GetRow(0)[1], Value(1));
  EXPECT_EQ(t.GetRow(1)[1], Value(4));
}

// ---------------------------------------------------------------------------
// Network-boundary validation
// ---------------------------------------------------------------------------

TEST(IngressFailureTest, MalformedTuplesSilentlyDropped) {
  SystemClock* clock = SystemClock::Get();
  auto basket = std::make_shared<core::Basket>("in", StreamSchema());
  auto receptor = std::make_shared<core::Receptor>("r");
  receptor->AddOutput(basket);
  net::TcpIngress ingress(receptor, net::Codec(StreamSchema()), clock);
  ASSERT_TRUE(ingress.Start().ok());

  auto conn = net::TcpStream::Connect("127.0.0.1", ingress.port());
  ASSERT_TRUE(conn.ok());
  net::Codec codec(StreamSchema());
  ASSERT_TRUE(conn->WriteAll(codec.EncodeSchemaHeader() + "\n").ok());
  ASSERT_TRUE(conn->WriteAll("1|10\n").ok());
  ASSERT_TRUE(conn->WriteAll("garbage line\n").ok());
  ASSERT_TRUE(conn->WriteAll("2|not_an_int\n").ok());
  ASSERT_TRUE(conn->WriteAll("3|30\n").ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  for (int i = 0; i < 2000 && !ingress.finished(); ++i) clock->SleepFor(1000);
  ingress.Stop();
  EXPECT_TRUE(ingress.finished());
  // Exactly the two well-formed tuples arrived; the rest acted as if they
  // had never been sent (the silent-filter semantics).
  EXPECT_EQ(ingress.tuples_received(), 2u);
  EXPECT_EQ(basket->size(), 2u);
}

TEST(IngressFailureTest, SchemaMismatchRejectsConnection) {
  SystemClock* clock = SystemClock::Get();
  auto basket = std::make_shared<core::Basket>("in", StreamSchema());
  auto receptor = std::make_shared<core::Receptor>("r");
  receptor->AddOutput(basket);
  net::TcpIngress ingress(receptor, net::Codec(StreamSchema()), clock);
  ASSERT_TRUE(ingress.Start().ok());

  auto conn = net::TcpStream::Connect("127.0.0.1", ingress.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("different:int|schema:string\n1|x\n").ok());
  ASSERT_TRUE(conn->ShutdownWrite().ok());
  for (int i = 0; i < 2000 && !ingress.finished(); ++i) clock->SleepFor(1000);
  ingress.Stop();
  EXPECT_TRUE(ingress.finished());
  EXPECT_EQ(ingress.tuples_received(), 0u);
  EXPECT_EQ(basket->size(), 0u);
}

TEST(SocketFailureTest, ConnectToDeadPortFails) {
  // Bind-then-close yields a port that is very likely unbound.
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();
  auto conn = net::TcpStream::Connect("127.0.0.1", port);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kIOError);
}

TEST(SocketFailureTest, BadAddressRejected) {
  auto conn = net::TcpStream::Connect("not-an-address", 80);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// SQL error paths
// ---------------------------------------------------------------------------

class SqlFailureTest : public ::testing::Test {
 protected:
  SqlFailureTest() : clock_(0), engine_(&clock_), session_(&engine_) {}
  SimulatedClock clock_;
  core::Engine engine_;
  sql::Session session_;
};

TEST_F(SqlFailureTest, DivisionByZeroYieldsNullNotCrash) {
  ASSERT_TRUE(session_.Execute("create table t (a int)").ok());
  ASSERT_TRUE(session_.Execute("insert into t values (1)").ok());
  auto r = session_.Execute("select a / 0 q from t");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->GetRow(0)[0].is_null());
}

TEST_F(SqlFailureTest, ScalarSubqueryWithTwoRowsRejected) {
  ASSERT_TRUE(session_.Execute("create table t (a int)").ok());
  ASSERT_TRUE(session_.Execute("insert into t values (1), (2)").ok());
  auto r = session_.Execute("select 1 + (select a from t) q");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlFailureTest, EmptyScalarSubqueryIsNull) {
  ASSERT_TRUE(session_.Execute("create table t (a int)").ok());
  auto r = session_.Execute("select (select sum(a) from t) q");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->GetRow(0)[0].is_null());
}

TEST_F(SqlFailureTest, InsertIntoMissingRelation) {
  auto r = session_.Execute("insert into nowhere values (1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlFailureTest, ContinuousQueryOverMissingBasket) {
  auto f = session_.RegisterContinuousQuery(
      "q", "select * from [select * from ghost] as g");
  EXPECT_FALSE(f.ok());
}

TEST_F(SqlFailureTest, ContinuousQueryBodyErrorStopsScheduler) {
  ASSERT_TRUE(session_.Execute("create basket s (a int)").ok());
  // The target table does not exist: the factory body fails at runtime.
  auto f = session_.RegisterContinuousQuery(
      "q", "insert into missing_target select * from [select * from s] as z");
  ASSERT_TRUE(f.ok());  // registration is lazy about the target
  ASSERT_TRUE(session_.Execute("insert into s values (1)").ok());
  auto r = engine_.scheduler().RunUntilQuiescent();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlFailureTest, AggregateOfStringRejected) {
  ASSERT_TRUE(session_.Execute("create table t (s string)").ok());
  ASSERT_TRUE(session_.Execute("insert into t values ('x')").ok());
  EXPECT_FALSE(session_.Execute("select sum(s) from t").ok());
}

TEST_F(SqlFailureTest, GroupByStarRejected) {
  ASSERT_TRUE(session_.Execute("create table t (a int)").ok());
  EXPECT_FALSE(session_.Execute("select * from t group by a").ok());
}

TEST_F(SqlFailureTest, ThreeWayJoinUnsupported) {
  ASSERT_TRUE(session_.Execute("create table a (x int)").ok());
  ASSERT_TRUE(session_.Execute("create table b (y int)").ok());
  ASSERT_TRUE(session_.Execute("create table c (z int)").ok());
  auto r = session_.Execute("select * from a, b, c");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(SqlFailureTest, MergeWithoutEqualityRejected) {
  ASSERT_TRUE(session_.Execute("create basket x (a int)").ok());
  ASSERT_TRUE(session_.Execute("create basket y (b int)").ok());
  auto r = session_.Execute(
      "select * from [select * from x, y where x.a < y.b] as m");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(SqlFailureTest, DuplicateBasketRejected) {
  ASSERT_TRUE(session_.Execute("create basket s (a int)").ok());
  auto r = session_.Execute("create basket s (a int)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
  // And a table may not shadow a basket.
  EXPECT_EQ(session_.Execute("create table s (a int)").status().code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace datacell
