// Plan IR, rewrite passes, cost model and the multi-query optimizer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "sql/parser.h"
#include "sql/plan/builder.h"
#include "sql/plan/cost.h"
#include "sql/plan/optimizer.h"
#include "sql/plan/plan.h"
#include "sql/plan/rewrite.h"
#include "sql/session.h"
#include "util/clock.h"

namespace datacell::sql::plan {
namespace {

// ---------------------------------------------------------------------------
// Normalization & fingerprints
// ---------------------------------------------------------------------------

TEST(RewriteTest, MirroredComparisonsFingerprintEqual) {
  // 10 > x  and  x < 10
  ExprPtr a = Expr::Bin(BinaryOp::kGt, Expr::Lit(Value(10)), Expr::Col("x"));
  ExprPtr b = Expr::Bin(BinaryOp::kLt, Expr::Col("x"), Expr::Lit(Value(10)));
  EXPECT_EQ(NormalizePredicate(a)->ToString(),
            NormalizePredicate(b)->ToString());
  EXPECT_EQ(FingerprintHex(NormalizePredicate(a)->ToString()),
            FingerprintHex(NormalizePredicate(b)->ToString()));
}

TEST(RewriteTest, CommutativeOperandsOrdered) {
  ExprPtr ab = Expr::Bin(BinaryOp::kAnd, Expr::Col("a"), Expr::Col("b"));
  ExprPtr ba = Expr::Bin(BinaryOp::kAnd, Expr::Col("b"), Expr::Col("a"));
  EXPECT_EQ(NormalizePredicate(ab)->ToString(),
            NormalizePredicate(ba)->ToString());
}

TEST(RewriteTest, SplitAndRebuildConjuncts) {
  ExprPtr p = Expr::Bin(
      BinaryOp::kAnd,
      Expr::Bin(BinaryOp::kAnd, Expr::Col("a"), Expr::Col("b")),
      Expr::Col("c"));
  std::vector<ExprPtr> parts;
  SplitConjuncts(p, &parts);
  ASSERT_EQ(parts.size(), 3u);
  ExprPtr back = AndAll(parts);
  std::vector<ExprPtr> again;
  SplitConjuncts(back, &again);
  EXPECT_EQ(again.size(), 3u);
  // Null predicate: no conjuncts, AndAll of nothing is null.
  std::vector<ExprPtr> none;
  SplitConjuncts(nullptr, &none);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(AndAll({}), nullptr);
}

TEST(RewriteTest, NowIsNotStreamStatic) {
  ExprPtr static_p =
      Expr::Bin(BinaryOp::kLt, Expr::Col("x"), Expr::Lit(Value(10)));
  ExprPtr timed = Expr::Bin(BinaryOp::kLt, Expr::Col("ts"),
                            Expr::Call("now", {}));
  EXPECT_TRUE(IsStreamStatic(*static_p));
  EXPECT_FALSE(IsStreamStatic(*timed));
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, ShapeHeuristics) {
  ExprPtr eq = Expr::Bin(BinaryOp::kEq, Expr::Col("a"), Expr::Lit(Value(1)));
  ExprPtr ne = Expr::Bin(BinaryOp::kNe, Expr::Col("a"), Expr::Lit(Value(1)));
  ExprPtr lt = Expr::Bin(BinaryOp::kLt, Expr::Col("a"), Expr::Lit(Value(1)));
  EXPECT_LT(CostModel::HeuristicSelectivity(*eq),
            CostModel::HeuristicSelectivity(*lt));
  EXPECT_LT(CostModel::HeuristicSelectivity(*lt),
            CostModel::HeuristicSelectivity(*ne));
}

TEST(CostModelTest, ObservationsOverrideAndDriftSelfClears) {
  CostModel cost;
  ExprPtr eq = Expr::Bin(BinaryOp::kEq, Expr::Col("a"), Expr::Lit(Value(1)));
  const std::string fp = "deadbeefdeadbeef";
  const double heuristic = cost.EstimateSelectivity(*eq, fp);
  EXPECT_DOUBLE_EQ(heuristic, 0.10);

  // Below the sample floor the heuristic stands.
  cost.RecordObserved(fp, 100, 90);
  EXPECT_DOUBLE_EQ(cost.EstimateSelectivity(*eq, fp), 0.10);
  EXPECT_FALSE(cost.Drifted(heuristic, fp));

  // Enough samples, 90% pass rate: drifted vs the 0.10 the net was built
  // with; adopting the observed value clears the trigger.
  cost.RecordObserved(fp, 1000, 900);
  EXPECT_DOUBLE_EQ(cost.EstimateSelectivity(*eq, fp), 0.9);
  EXPECT_TRUE(cost.Drifted(heuristic, fp));
  EXPECT_FALSE(cost.Drifted(cost.EstimateSelectivity(*eq, fp), fp));
}

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

class PlanFixture : public ::testing::Test {
 protected:
  PlanFixture() : clock_(0), engine_(&clock_), session_(&engine_) {}

  void Exec(const std::string& sql) {
    auto r = session_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }

  Result<CompiledQuery> Compile(const std::string& sql) {
    auto stmt = ParseOne(sql);
    EXPECT_TRUE(stmt.ok());
    return CompileContinuous(&engine_, "q",
                             std::shared_ptr<Statement>(std::move(*stmt)),
                             cost_);
  }

  // Sink that accumulates one rendered line per result row.
  static core::Emitter::Sink Collect(std::vector<std::string>* out) {
    return [out](const Table& t) -> Status {
      for (size_t i = 0; i < t.num_rows(); ++i) {
        std::string line;
        const Row row = t.GetRow(i);
        for (size_t c = 0; c < row.size(); ++c) {
          if (c > 0) line += "|";
          line += row[c].ToString();
        }
        out->push_back(std::move(line));
      }
      return Status::OK();
    };
  }

  size_t CountTransitions(const std::string& prefix) {
    size_t n = 0;
    for (const auto& t : engine_.scheduler().TransitionStatsSnapshot()) {
      if (t.name.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }

  SimulatedClock clock_;
  core::Engine engine_;
  Session session_;
  CostModel cost_;
};

TEST_F(PlanFixture, CompileClassifiesConjuncts) {
  Exec("create basket s (a int, b int)");
  auto cq = Compile(
      "select * from [select * from s where a > 10 and b = 1] as w "
      "where w.a < 100");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->source_basket, "s");
  EXPECT_TRUE(cq->window_trivial);
  EXPECT_EQ(cq->min_tuples, 1u);
  // Inner a>10, b=1 and outer a<100 (trivial window) are all shareable.
  EXPECT_EQ(cq->shared.size(), 3u);
  for (const Conjunct& c : cq->shared) EXPECT_TRUE(c.shareable);
}

TEST_F(PlanFixture, NonTrivialWindowBlocksOuterPushdown) {
  Exec("create basket s (a int, b int)");
  auto cq = Compile(
      "select * from [select top 5 from s where a > 10 order by b] as w "
      "where w.a < 100");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_FALSE(cq->window_trivial);
  EXPECT_EQ(cq->min_tuples, 5u);
  // Only the inner conjunct crosses; the outer filter stays post-window.
  EXPECT_EQ(cq->shared.size(), 1u);
}

TEST_F(PlanFixture, NowConjunctIsNotShareable) {
  Exec("create basket s (a int)");
  auto cq = Compile(
      "select * from [select * from s where a > 10 and a < now()] as w");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->shared.size(), 1u);  // only a > 10
}

TEST_F(PlanFixture, UnsupportedShapesFallThrough) {
  Exec("create basket a (x int)");
  Exec("create basket b (x int)");
  // Two-basket merge: not in the plannable subset.
  EXPECT_FALSE(Compile("select * from [select * from a], [select * from b] "
                       "where a.x = b.x")
                   .ok());
  // One-time query: no basket expression.
  Exec("create table t (x int)");
  EXPECT_FALSE(Compile("select * from t").ok());
}

TEST_F(PlanFixture, FilterOrderedBySelectivity) {
  Exec("create basket s (a int, b int)");
  auto cq = Compile(
      "select * from [select * from s where a <> 1 and b = 2 and a > 3]");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  // The plan's filter node orders eq (0.10) < range (0.33) < ne (0.90).
  std::string text;
  cq->plan->Render(0, &text);
  const size_t eq_pos = text.find("b = 2");
  const size_t range_pos = text.find("a > 3");
  const size_t ne_pos = text.find("a <> 1");
  ASSERT_NE(eq_pos, std::string::npos);
  ASSERT_NE(range_pos, std::string::npos);
  ASSERT_NE(ne_pos, std::string::npos);
  EXPECT_LT(eq_pos, range_pos);
  EXPECT_LT(range_pos, ne_pos);
}

// ---------------------------------------------------------------------------
// Multi-query optimizer
// ---------------------------------------------------------------------------

TEST_F(PlanFixture, DefaultModeKeepsLegacyWiring) {
  Exec("create basket s (a int)");
  auto f1 = session_.RegisterContinuousSelect(
      "q1", "select * from [select * from s where a > 1]", nullptr);
  ASSERT_TRUE(f1.ok());
  auto f2 = session_.RegisterContinuousSelect(
      "q2", "select * from [select * from s where a > 2]", nullptr);
  ASSERT_TRUE(f2.ok());
  // One transition per query, no shared stages.
  EXPECT_EQ(engine_.scheduler().num_transitions(), 2u);
  EXPECT_EQ(CountTransitions("mqo."), 0u);
  EXPECT_TRUE(session_.UnregisterContinuousQuery("q1").ok());
  EXPECT_EQ(engine_.scheduler().num_transitions(), 1u);
}

TEST_F(PlanFixture, IdenticalPrefixFactorsIntoOneSharedChain) {
  Exec("create basket s (a int, b int)");
  session_.set_sharing_enabled(true);
  std::vector<std::string> r1, r2, r3;
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q1", "select * from [select * from s where a > 10]",
                      Collect(&r1))
                  .ok());
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q2", "select * from [select * from s where 10 < a]",
                      Collect(&r2))
                  .ok());
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q3", "select * from [select * from s where a > 10]",
                      Collect(&r3))
                  .ok());
  // All three share the normalized a > 10: exactly ONE shared stage factory
  // plus the three per-query leaves.
  EXPECT_EQ(CountTransitions("mqo."), 1u);
  EXPECT_EQ(engine_.scheduler().num_transitions(), 4u);

  Exec("insert into s values (5, 1), (11, 2), (20, 3)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r3);
}

TEST_F(PlanFixture, SharedResultsMatchLegacySingleQuery) {
  const std::vector<std::string> queries = {
      "select * from [select * from s where a > 10 and b = 1]",
      "select * from [select * from s where a > 10 and b = 2]",
      "select * from [select * from s where a > 10] as w where w.b <> 3",
  };
  const std::string feed =
      "insert into s values (11, 1), (5, 1), (12, 2), (13, 3), (40, 1), "
      "(41, 2), (9, 2), (50, 3)";

  // Ground truth: each query alone on a fresh engine, legacy wiring.
  std::vector<std::vector<std::string>> expected(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SimulatedClock clock(0);
    core::Engine engine(&clock);
    Session session(&engine);
    auto r = session.Execute("create basket s (a int, b int)");
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(session
                    .RegisterContinuousSelect("q", queries[i],
                                              Collect(&expected[i]))
                    .ok());
    ASSERT_TRUE(session.Execute(feed).ok());
    ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  }

  // Shared engine: all three queries on one basket.
  Exec("create basket s (a int, b int)");
  session_.set_sharing_enabled(true);
  std::vector<std::vector<std::string>> got(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(session_
                    .RegisterContinuousSelect("q" + std::to_string(i),
                                              queries[i], Collect(&got[i]))
                    .ok());
  }
  Exec(feed);
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "query " << i;
  }
}

TEST_F(PlanFixture, DropLeavesSiblingResultsByteIdentical) {
  const std::vector<std::string> queries = {
      "select * from [select * from s where a > 10 and b = 1]",
      "select * from [select * from s where a > 10 and b = 2]",
      "select * from [select * from s where a > 10 and b = 3]",
  };
  const std::string batch1 =
      "insert into s values (11, 1), (12, 2), (13, 3), (5, 1), (40, 1)";
  const std::string batch2 =
      "insert into s values (21, 1), (22, 2), (23, 3), (6, 2), (50, 3)";

  auto run = [&](bool drop_q1_midway,
                 std::vector<std::vector<std::string>>* out) {
    SimulatedClock clock(0);
    core::Engine engine(&clock);
    Session session(&engine);
    ASSERT_TRUE(session.Execute("create basket s (a int, b int)").ok());
    session.set_sharing_enabled(true);
    out->assign(queries.size(), {});
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(session
                      .RegisterContinuousSelect("q" + std::to_string(i),
                                                queries[i],
                                                Collect(&(*out)[i]))
                      .ok());
    }
    ASSERT_TRUE(session.Execute(batch1).ok());
    ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
    ASSERT_TRUE(session.Execute(batch2).ok());
    if (drop_q1_midway) {
      // batch2 is still resident in the source basket: the rebuild's
      // drain/teardown must not lose or reorder it for q0 / q2.
      ASSERT_TRUE(session.UnregisterContinuousQuery("q1").ok());
      EXPECT_FALSE(engine.HasBasket("mqo.q.q1"));
    }
    ASSERT_TRUE(engine.scheduler().RunUntilQuiescent().ok());
  };

  std::vector<std::vector<std::string>> keep_all, with_drop;
  run(false, &keep_all);
  run(true, &with_drop);
  EXPECT_EQ(with_drop[0], keep_all[0]);
  EXPECT_EQ(with_drop[2], keep_all[2]);
  EXPECT_FALSE(keep_all[0].empty());
}

TEST_F(PlanFixture, DuplicateNameAndMissingNameAreCleanErrors) {
  Exec("create basket s (a int)");
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q", "select * from [select * from s]", nullptr)
                  .ok());
  auto dup = session_.RegisterContinuousSelect(
      "q", "select * from [select * from s]", nullptr);
  EXPECT_FALSE(dup.ok());
  EXPECT_FALSE(session_.UnregisterContinuousQuery("nope").ok());
  EXPECT_TRUE(session_.UnregisterContinuousQuery("q").ok());
}

TEST_F(PlanFixture, ReoptimizeRebuildsOnDriftThenClears) {
  Exec("create basket s (a int)");
  session_.set_sharing_enabled(true);
  std::vector<std::string> r1, r2;
  // b = 1 heuristically estimates 0.10, but the stream passes ~100%.
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q1", "select * from [select * from s where a = 1]",
                      Collect(&r1))
                  .ok());
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q2", "select * from [select * from s where a = 1]",
                      Collect(&r2))
                  .ok());
  for (int i = 0; i < 30; ++i) {
    Exec("insert into s values (1), (1), (1), (1), (1), (1), (1), (1), "
         "(1), (1)");
    ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  }
  auto first = session_.Reoptimize();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);  // observed ~1.0 vs built 0.10: rebuild
  auto second = session_.Reoptimize();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0u);  // estimates adopted: trigger self-clears
  EXPECT_EQ(r1.size(), 300u);
  EXPECT_EQ(r1, r2);
}

TEST_F(PlanFixture, ExplainRendersPlanAndSharing) {
  Exec("create basket s (a int, b int)");
  session_.set_sharing_enabled(true);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(session_
                    .RegisterContinuousSelect(
                        "q" + std::to_string(i),
                        "select * from [select * from s where a > 10 and b = " +
                            std::to_string(i) + "]",
                        nullptr)
                    .ok());
  }
  auto r = session_.Execute(
      "explain select * from [select * from s where a > 10 and b = 1]");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_columns(), 1u);
  std::string text;
  for (size_t i = 0; i < r->num_rows(); ++i) {
    text += r->GetRow(i)[0].ToString();
    text += "\n";
  }
  EXPECT_NE(text.find("scan s (basket"), std::string::npos) << text;
  EXPECT_NE(text.find("shared_by=3"), std::string::npos) << text;
  EXPECT_NE(text.find("sharing: on"), std::string::npos) << text;
  EXPECT_NE(text.find("standing=3"), std::string::npos) << text;

  // EXPLAIN of a one-time query renders the structural plan.
  Exec("create table t (x int)");
  auto once = session_.Execute("explain select x from t where x > 1");
  ASSERT_TRUE(once.ok());
  std::string once_text;
  for (size_t i = 0; i < once->num_rows(); ++i) {
    once_text += once->GetRow(i)[0].ToString();
    once_text += "\n";
  }
  EXPECT_NE(once_text.find("one-time plan"), std::string::npos) << once_text;
  EXPECT_NE(once_text.find("scan t (table"), std::string::npos) << once_text;
}

TEST_F(PlanFixture, PlansVirtualTableListsStages) {
  Exec("create basket s (a int)");
  session_.set_sharing_enabled(true);
  ASSERT_TRUE(session_
                  .RegisterContinuousSelect(
                      "q1", "select * from [select * from s where a > 1]",
                      nullptr)
                  .ok());
  auto r = session_.Execute("select * from dc_plans");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->num_rows(), 2u);  // stage row + leaf row
}

}  // namespace
}  // namespace datacell::sql::plan
