// Stress coverage for the event-driven multi-worker scheduler: concurrent
// appends, parallel firings, the place-set conflict rule, basket change
// signalling, and quiescence detection. The whole file is designed to run
// clean under ThreadSanitizer (cmake -DDATACELL_SANITIZE=thread).

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/factory.h"
#include "core/metronome.h"
#include "core/receptor.h"
#include "core/scheduler.h"
#include "ops/kernels.h"
#include "ops/morsel.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/simd.h"

namespace datacell::core {
namespace {

Schema StreamSchema() {
  return Schema({{"seq", DataType::kInt64}, {"payload", DataType::kInt64}});
}

Table MakeSeqBatch(int64_t first_seq, size_t n) {
  Table t(StreamSchema());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(t.AppendRow({Value(first_seq + static_cast<int64_t>(i)),
                             Value(static_cast<int64_t>(i % 7))})
                    .ok());
  }
  return t;
}

TEST(BasketSignalTest, VersionBumpsOnEveryMutation) {
  Basket b("b", StreamSchema());
  const uint64_t v0 = b.version();
  ASSERT_TRUE(b.Append(MakeSeqBatch(0, 3), 0).ok());
  const uint64_t v1 = b.version();
  EXPECT_GT(v1, v0);
  ASSERT_TRUE(b.EraseRows({0}).ok());
  const uint64_t v2 = b.version();
  EXPECT_GT(v2, v1);
  (void)b.TakeAll();
  const uint64_t v3 = b.version();
  EXPECT_GT(v3, v2);
  // Mutations that touch nothing do not signal.
  b.Clear();
  EXPECT_EQ(b.version(), v3);
}

TEST(BasketSignalTest, ListenersFireAndCanBeRemoved) {
  Basket b("b", StreamSchema());
  int hits = 0;
  const size_t id = b.AddListener([&] { ++hits; });
  ASSERT_TRUE(b.Append(MakeSeqBatch(0, 1), 0).ok());
  EXPECT_EQ(hits, 1);
  b.Clear();
  EXPECT_EQ(hits, 2);
  b.RemoveListener(id);
  ASSERT_TRUE(b.Append(MakeSeqBatch(1, 1), 0).ok());
  EXPECT_EQ(hits, 2);
}

// K independent chains, multiple workers, producers appending concurrently
// with firings: every tuple must arrive exactly once.
TEST(SchedulerConcurrencyTest, ConcurrentAppendsAndParallelFirings) {
  constexpr int kChains = 4;
  constexpr int kBatches = 50;
  constexpr size_t kBatchRows = 20;
  constexpr int64_t kPerChain = kBatches * static_cast<int64_t>(kBatchRows);

  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock, /*num_workers=*/4);

  std::vector<BasketPtr> inputs;
  std::array<std::atomic<int64_t>, kChains> received{};
  std::array<std::set<int64_t>, kChains> seen;
  // Mutex has no default constructor (the rank is mandatory), so wrap it
  // for std::array. kLogging: leaf rank — the emitter bodies run under
  // basket locks.
  struct ChainMutex {
    Mutex mu{LockRank::kLogging};
  };
  std::array<ChainMutex, kChains> seen_mu;

  for (int c = 0; c < kChains; ++c) {
    auto in = std::make_shared<Basket>("in" + std::to_string(c),
                                       StreamSchema());
    auto mid = std::make_shared<Basket>("mid" + std::to_string(c),
                                        in->schema(), false);
    inputs.push_back(in);
    auto forward = std::make_shared<Factory>(
        "fwd" + std::to_string(c), [](FactoryContext& ctx) -> Status {
          Table batch = ctx.input(0).TakeAll();
          if (batch.num_rows() == 0) return Status::OK();
          return ctx.output(0).AppendAligned(batch, ctx.now()).status();
        });
    forward->AddInput(in);
    forward->AddOutput(mid);
    auto emit = std::make_shared<Emitter>(
        "emit" + std::to_string(c), [&, c](const Table& batch) -> Status {
          MutexLock lock(&seen_mu[c].mu);
          for (int64_t v : batch.column(0).ints()) seen[c].insert(v);
          received[c].fetch_add(static_cast<int64_t>(batch.num_rows()));
          return Status::OK();
        });
    emit->AddInput(mid);
    sched.Register(forward);
    sched.Register(emit);
  }

  ASSERT_TRUE(sched.Start().ok());
  std::vector<std::thread> producers;
  for (int c = 0; c < kChains; ++c) {
    producers.emplace_back([&, c] {
      for (int b = 0; b < kBatches; ++b) {
        Table batch = MakeSeqBatch(b * static_cast<int64_t>(kBatchRows),
                                   kBatchRows);
        ASSERT_TRUE(inputs[c]->Append(batch, clock->Now()).ok());
      }
    });
  }
  for (std::thread& p : producers) p.join();

  auto all_received = [&] {
    for (int c = 0; c < kChains; ++c) {
      if (received[c].load() < kPerChain) return false;
    }
    return true;
  };
  for (int i = 0; i < 20000 && !all_received(); ++i) clock->SleepFor(1000);
  sched.Stop();
  ASSERT_TRUE(sched.last_error().ok());
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(received[c].load(), kPerChain) << "chain " << c;
    MutexLock lock(&seen_mu[c].mu);
    EXPECT_EQ(seen[c].size(), static_cast<size_t>(kPerChain)) << "chain " << c;
  }
}

// Two factories sharing one input basket must never run their bodies
// concurrently (the place-set conflict rule).
TEST(SchedulerConcurrencyTest, SharedPlaceFiringsNeverOverlap) {
  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock, /*num_workers=*/4);
  auto shared = std::make_shared<Basket>("shared", StreamSchema());
  std::atomic<int> in_body{0};
  std::atomic<int> max_in_body{0};
  std::atomic<int64_t> consumed{0};
  for (int i = 0; i < 2; ++i) {
    auto f = std::make_shared<Factory>(
        "f" + std::to_string(i), [&](FactoryContext& ctx) -> Status {
          const int depth = in_body.fetch_add(1) + 1;
          int prev = max_in_body.load();
          while (prev < depth && !max_in_body.compare_exchange_weak(prev, depth)) {
          }
          // Hold the body long enough that an (incorrectly) overlapping
          // firing would be observed.
          SystemClock::Get()->SleepFor(200);
          Table batch = ctx.input(0).TakeAll();
          consumed.fetch_add(static_cast<int64_t>(batch.num_rows()));
          in_body.fetch_sub(1);
          return Status::OK();
        });
    f->AddInput(shared);
    sched.Register(f);
  }
  ASSERT_TRUE(sched.Start().ok());
  for (int b = 0; b < 50; ++b) {
    ASSERT_TRUE(shared->Append(MakeSeqBatch(b * 4, 4), clock->Now()).ok());
    if (b % 8 == 0) clock->SleepFor(300);
  }
  for (int i = 0; i < 10000 && consumed.load() < 200; ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  EXPECT_EQ(consumed.load(), 200);
  EXPECT_EQ(max_in_body.load(), 1);
}

// Registering transitions while workers are running (and while another
// transition is mid-firing) must neither block nor lose work.
TEST(SchedulerConcurrencyTest, RegisterWhileRunning) {
  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock, /*num_workers=*/2);
  auto in0 = std::make_shared<Basket>("in0", StreamSchema());
  std::atomic<int64_t> drained0{0};
  auto slow = std::make_shared<Factory>(
      "slow", [&](FactoryContext& ctx) -> Status {
        SystemClock::Get()->SleepFor(500);
        drained0.fetch_add(static_cast<int64_t>(ctx.input(0).TakeAll().num_rows()));
        return Status::OK();
      });
  slow->AddInput(in0);
  sched.Register(slow);
  ASSERT_TRUE(sched.Start().ok());
  ASSERT_TRUE(in0->Append(MakeSeqBatch(0, 10), clock->Now()).ok());

  auto in1 = std::make_shared<Basket>("in1", StreamSchema());
  // Pre-filled before registration: the initial enqueue must pick it up.
  ASSERT_TRUE(in1->Append(MakeSeqBatch(0, 5), clock->Now()).ok());
  std::atomic<int64_t> drained1{0};
  auto late = std::make_shared<Factory>(
      "late", [&](FactoryContext& ctx) -> Status {
        drained1.fetch_add(static_cast<int64_t>(ctx.input(0).TakeAll().num_rows()));
        return Status::OK();
      });
  late->AddInput(in1);
  sched.Register(late);
  EXPECT_EQ(sched.num_transitions(), 2u);

  for (int i = 0; i < 10000 && (drained0.load() < 10 || drained1.load() < 5);
       ++i) {
    clock->SleepFor(1000);
  }
  sched.Stop();
  EXPECT_EQ(drained0.load(), 10);
  EXPECT_EQ(drained1.load(), 5);
}

// Cooperative quiescence detection with a producer racing RunUntilQuiescent:
// once producers stop, repeated RunUntilQuiescent must drain everything.
TEST(SchedulerConcurrencyTest, CooperativeQuiescenceUnderConcurrentAppends) {
  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock);
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto out = std::make_shared<Basket>("out", in->schema(), false);
  auto f = std::make_shared<Factory>("f", [](FactoryContext& ctx) -> Status {
    Table batch = ctx.input(0).TakeAll();
    if (batch.num_rows() == 0) return Status::OK();
    return ctx.output(0).AppendAligned(batch, ctx.now()).status();
  });
  f->AddInput(in);
  f->AddOutput(out);
  sched.Register(f);

  std::thread producer([&] {
    for (int b = 0; b < 100; ++b) {
      ASSERT_TRUE(in->Append(MakeSeqBatch(b * 8, 8), clock->Now()).ok());
    }
  });
  // Drive rounds while the producer is appending.
  while (out->size() < 800) {
    auto r = sched.RunUntilQuiescent();
    ASSERT_TRUE(r.ok());
    clock->SleepFor(100);  // yield so the producer makes progress
  }
  producer.join();
  ASSERT_TRUE(sched.RunUntilQuiescent().ok());
  EXPECT_EQ(in->size(), 0u);
  EXPECT_EQ(out->size(), 800u);
}

// A metronome in threaded mode must tick on its deadline (timed wait, not
// starvation) alongside data-driven work.
TEST(SchedulerConcurrencyTest, MetronomeTicksInThreadedMode) {
  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock, /*num_workers=*/2);
  auto hb = std::make_shared<Basket>("hb", StreamSchema());
  const Micros start = clock->Now() + 2'000;
  auto met = std::make_shared<Metronome>("met", hb, start, /*interval=*/2'000);
  sched.Register(met);
  ASSERT_TRUE(sched.Start().ok());
  for (int i = 0; i < 10000 && hb->size() < 5; ++i) clock->SleepFor(1000);
  sched.Stop();
  EXPECT_GE(hb->size(), 5u);
}

// COW snapshot readers racing a writer and a prefix consumer: every Peek()
// must observe an internally consistent, immutable table even while the
// basket underneath it is appended to, prefix-consumed, and compacted.
TEST(SchedulerConcurrencyTest, SnapshotReadsRaceWriterAppends) {
  constexpr int kBatches = 300;
  constexpr size_t kBatchRows = 16;
  auto basket = std::make_shared<Basket>("snap", StreamSchema(),
                                         /*add_arrival_ts=*/false);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> snapshots_read{0};

  // Readers: zero-copy snapshots scanned without any basket lock held.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Table snap = basket->Peek();
        const auto seq = snap.column(0).ints();
        // The sequence column is appended in order and consumed from the
        // front, so any consistent snapshot is strictly ascending with
        // unit steps.
        for (size_t i = 1; i < seq.size(); ++i) {
          ASSERT_EQ(seq[i], seq[i - 1] + 1);
        }
        // Immutability: the snapshot must not move while we re-read it.
        if (!seq.empty()) {
          const int64_t first = seq[0];
          SystemClock::Get()->SleepFor(50);
          ASSERT_EQ(snap.column(0).ints()[0], first);
        }
        snapshots_read.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Consumer: O(1) prefix erases (with amortized compaction) racing the
  // readers' snapshots.
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const size_t n = basket->size();
      if (n > 64) {
        ASSERT_TRUE(basket->ErasePrefix(n / 2).ok());
      }
      SystemClock::Get()->SleepFor(100);
    }
  });

  // Writer: the main thread appends every batch.
  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(
        basket->Append(MakeSeqBatch(b * static_cast<int64_t>(kBatchRows),
                                    kBatchRows),
                       0)
            .ok());
  }
  // Let the readers observe the final state for a moment.
  for (int i = 0; i < 10000 && snapshots_read.load() < 50; ++i) {
    SystemClock::Get()->SleepFor(500);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& r : readers) r.join();
  consumer.join();
  EXPECT_GE(snapshots_read.load(), 50);
  EXPECT_EQ(basket->stats().appended, kBatches * kBatchRows);
}

// Stats reads racing firings must be clean (the Factory::Stats data race
// fix) — exercised by hammering stats() from another thread.
TEST(SchedulerConcurrencyTest, StatsReadsDuringFiringsAreClean) {
  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock, /*num_workers=*/2);
  auto in = std::make_shared<Basket>("in", StreamSchema());
  auto f = std::make_shared<Factory>("f", [](FactoryContext& ctx) -> Status {
    (void)ctx.input(0).TakeAll();
    return Status::OK();
  });
  f->AddInput(in);
  sched.Register(f);
  ASSERT_TRUE(sched.Start().ok());

  std::atomic<bool> done{false};
  std::thread reader([&] {
    uint64_t sink = 0;
    while (!done.load()) {
      const Factory::Stats fs = f->stats();
      sink += fs.firings + static_cast<uint64_t>(fs.total_exec);
      const Basket::Stats bs = in->stats();
      sink += bs.appended + bs.consumed;
    }
    (void)sink;
  });
  for (int b = 0; b < 200; ++b) {
    ASSERT_TRUE(in->Append(MakeSeqBatch(b, 4), clock->Now()).ok());
  }
  for (int i = 0; i < 10000 && in->size() > 0; ++i) clock->SleepFor(500);
  done.store(true);
  reader.join();
  sched.Stop();
  EXPECT_EQ(in->size(), 0u);
  EXPECT_GE(f->stats().firings, 1u);
}

// Live pool resizes racing firings whose bodies dispatch morsels into the
// pool: every tuple must still arrive exactly once, every morsel must
// complete (the fold results stay exact), and nothing deadlocks. This is
// the regression test for set_num_workers while running.
TEST(SchedulerConcurrencyTest, ResizeWorkersUnderLoadWithMorsels) {
  SystemClock* clock = SystemClock::Get();
  Scheduler sched(clock, /*num_workers=*/2);
  auto in = std::make_shared<Basket>("in", StreamSchema());
  std::atomic<int64_t> consumed{0};
  std::atomic<int64_t> fold_mismatches{0};

  // Shared hot column, large enough that the kernels split it into
  // several morsels and dispatch them to the worker pool on every firing.
  const size_t kHotRows = 3 * ops::kMorselRows;
  Column hot(DataType::kInt64);
  hot.ints().reserve(kHotRows);
  int64_t hot_sum = 0;
  for (size_t i = 0; i < kHotRows; ++i) {
    hot.AppendInt(static_cast<int64_t>(i % 1000));
    hot_sum += static_cast<int64_t>(i % 1000);
  }

  auto f = std::make_shared<Factory>(
      "hot", [&](FactoryContext& ctx) -> Status {
        Table batch = ctx.input(0).TakeAll();
        consumed.fetch_add(static_cast<int64_t>(batch.num_rows()));
        const simd::FoldState fold = ops::kern::FoldNumeric(hot);
        if (static_cast<int64_t>(fold.isum) != hot_sum ||
            fold.count != kHotRows) {
          fold_mismatches.fetch_add(1);
        }
        return Status::OK();
      });
  f->AddInput(in);
  sched.Register(f);
  ASSERT_TRUE(sched.Start().ok());

  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    const size_t sizes[] = {1, 4, 2, 3};
    size_t i = 0;
    while (!stop.load()) {
      EXPECT_TRUE(sched.set_num_workers(sizes[i++ % 4]).ok());
      SystemClock::Get()->SleepFor(200);
    }
  });

  for (int b = 0; b < 100; ++b) {
    ASSERT_TRUE(in->Append(MakeSeqBatch(b * 4, 4), clock->Now()).ok());
  }
  for (int i = 0; i < 20000 && consumed.load() < 400; ++i) {
    clock->SleepFor(500);
  }
  stop.store(true);
  resizer.join();
  sched.Stop();
  ASSERT_TRUE(sched.last_error().ok());
  EXPECT_EQ(consumed.load(), 400);
  EXPECT_EQ(fold_mismatches.load(), 0);
  // Resizes while stopped take effect on the next Start().
  ASSERT_TRUE(sched.set_num_workers(3).ok());
  EXPECT_EQ(sched.num_workers(), 3u);
}

}  // namespace
}  // namespace datacell::core
