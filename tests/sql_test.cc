#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "util/clock.h"

namespace datacell::sql {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  SqlTest() : clock_(0), engine_(&clock_), session_(&engine_) {}

  // Executes and asserts success.
  Table Exec(const std::string& sql) {
    auto r = session_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return Table();
    return std::move(r).value();
  }

  Status ExecStatus(const std::string& sql) {
    return session_.Execute(sql).status();
  }

  SimulatedClock clock_;
  core::Engine engine_;
  Session session_;
};

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

TEST(ParserTest, ParsesSimpleSelect) {
  auto stmts = Parse("select a, b from t where a > 1 order by b desc limit 3;");
  ASSERT_TRUE(stmts.ok());
  ASSERT_EQ(stmts->size(), 1u);
  const Statement& s = *(*stmts)[0];
  ASSERT_EQ(s.kind, Statement::Kind::kSelect);
  EXPECT_EQ(s.select->items.size(), 2u);
  EXPECT_NE(s.select->where, nullptr);
  EXPECT_EQ(s.select->order_by.size(), 1u);
  EXPECT_FALSE(s.select->order_by[0].ascending);
  EXPECT_EQ(s.select->top_n, 3u);
}

TEST(ParserTest, ParsesBasketExpression) {
  auto stmt = ParseOne("select * from [select * from r where r.b < 10] as s "
                       "where s.a > 1");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& outer = *(*stmt)->select;
  ASSERT_EQ(outer.from.size(), 1u);
  EXPECT_EQ(outer.from[0].kind, FromItem::Kind::kBasketExpr);
  EXPECT_EQ(outer.from[0].alias, "s");
  EXPECT_TRUE(IsContinuous(**stmt));
  std::vector<std::string> sources;
  CollectBasketSources(**stmt, &sources);
  ASSERT_EQ(sources.size(), 1u);
  EXPECT_EQ(sources[0], "r");
}

TEST(ParserTest, PaperTopSyntax) {
  // `select top 20 from X order by tag` (§5 filter example).
  auto stmt = ParseOne("select top 20 from x order by tag");
  ASSERT_TRUE(stmt.ok());
  const SelectStmt& s = *(*stmt)->select;
  EXPECT_EQ(s.top_n, 20u);
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.items[0].star);
}

TEST(ParserTest, PaperSelectAllSyntax) {
  auto stmt = ParseOne("insert into trash [select all from x where x.tag < 5]");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->kind, Statement::Kind::kInsert);
  ASSERT_NE((*stmt)->insert->select, nullptr);
  EXPECT_TRUE(IsContinuous(**stmt));
}

TEST(ParserTest, WithBlock) {
  auto stmt = ParseOne(
      "with a as [select * from x] begin "
      "insert into y select * from a where a.payload > 100; "
      "insert into z select * from a where a.payload <= 200; "
      "end");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->kind, Statement::Kind::kWithBlock);
  EXPECT_EQ((*stmt)->with_block->binding, "a");
  EXPECT_EQ((*stmt)->with_block->body.size(), 2u);
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt = ParseOne("set cnt = cnt + (select count(*) from z)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->kind, Statement::Kind::kSet);
  EXPECT_EQ((*stmt)->subqueries.size(), 1u);
}

TEST(ParserTest, IntervalLiteral) {
  auto stmt = ParseOne("select * from t where ts < now() - interval 1 hour");
  ASSERT_TRUE(stmt.ok());
  // also the quoted form
  EXPECT_TRUE(ParseOne("select * from t where ts < interval '90' second").ok());
}

TEST(ParserTest, Between) {
  auto stmt = ParseOne("select * from t where a between 1 and 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE((*stmt)->select->where, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("select from where").ok());
  EXPECT_FALSE(Parse("frobnicate the stream").ok());
  EXPECT_FALSE(Parse("select * from [select * from x").ok());  // missing ]
  EXPECT_FALSE(Parse("with a as [select * from x] begin insert into y "
                     "select * from a").ok());  // missing END
  EXPECT_FALSE(Parse("select 'unterminated").ok());
}

TEST(ParserTest, Comments) {
  auto stmts = Parse(
      "-- a comment\n"
      "select 1 one; /* block\n comment */ select 2 two;");
  ASSERT_TRUE(stmts.ok());
  EXPECT_EQ(stmts->size(), 2u);
}

// --------------------------------------------------------------------------
// One-time execution over tables
// --------------------------------------------------------------------------

TEST_F(SqlTest, CreateInsertSelect) {
  Exec("create table t (a int, b string)");
  Exec("insert into t values (1, 'x'), (2, 'y'), (3, 'x')");
  Table r = Exec("select a from t where b = 'x' order by a desc");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value(3));
  EXPECT_EQ(r.GetRow(1)[0], Value(1));
}

TEST_F(SqlTest, SelectWithoutFrom) {
  Table r = Exec("select 1 + 2 answer");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(3));
  EXPECT_EQ(r.schema().field(0).name, "answer");
}

TEST_F(SqlTest, Projection) {
  Exec("create table t (a int, b double)");
  Exec("insert into t values (1, 0.5), (2, 1.5)");
  Table r = Exec("select a * 10 as big, b from t");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.schema().field(0).name, "big");
  EXPECT_EQ(r.GetRow(1)[0], Value(20));
}

TEST_F(SqlTest, Aggregates) {
  Exec("create table t (k string, v int)");
  Exec("insert into t values ('a', 1), ('a', 2), ('b', 5)");
  Table r = Exec("select k, sum(v) total, count(*) n from t group by k "
                 "order by k");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value("a"));
  EXPECT_EQ(r.GetRow(0)[1], Value(int64_t{3}));
  EXPECT_EQ(r.GetRow(0)[2], Value(int64_t{2}));
  EXPECT_EQ(r.GetRow(1)[1], Value(int64_t{5}));
}

TEST_F(SqlTest, AggregateArithmetic) {
  Exec("create table t (v int)");
  Exec("insert into t values (10), (20)");
  Table r = Exec("select 2 * (count(*) - 1) x, avg(v) + 1 y from t");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(2));
  EXPECT_EQ(r.GetRow(0)[1], Value(16.0));
}

TEST_F(SqlTest, Having) {
  Exec("create table t (k int, v int)");
  Exec("insert into t values (1, 1), (1, 2), (2, 9)");
  Table r = Exec("select k from t group by k having count(*) >= 2");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(1));
}

TEST_F(SqlTest, Distinct) {
  Exec("create table t (a int)");
  Exec("insert into t values (1), (2), (1), (3), (2)");
  Table r = Exec("select distinct a from t order by a");
  ASSERT_EQ(r.num_rows(), 3u);
}

TEST_F(SqlTest, JoinTwoTables) {
  Exec("create table o (id int, cust string)");
  Exec("create table p (oid int, amt double)");
  Exec("insert into o values (1, 'ann'), (2, 'bob')");
  Exec("insert into p values (1, 5.0), (1, 6.0), (9, 7.0)");
  Table r = Exec("select o.cust, p.amt from o, p where o.id = p.oid "
                 "order by p.amt");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value("ann"));
  EXPECT_EQ(r.GetRow(0)[1], Value(5.0));
}

TEST_F(SqlTest, ThetaJoin) {
  Exec("create table a (x int)");
  Exec("create table b (y int)");
  Exec("insert into a values (1), (5)");
  Exec("insert into b values (3), (4)");
  Table r = Exec("select a.x, b.y from a, b where a.x < b.y order by x, y");
  ASSERT_EQ(r.num_rows(), 2u);  // (1,3), (1,4)
  EXPECT_EQ(r.GetRow(0)[0], Value(1));
}

TEST_F(SqlTest, SelfJoinWithAliases) {
  Exec("create table t (id int, pos int)");
  Exec("insert into t values (1, 7), (2, 7), (3, 8)");
  Table r = Exec(
      "select a.id, b.id from t as a, t as b "
      "where a.pos = b.pos and a.id < b.id");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(1));
  EXPECT_EQ(r.GetRow(0)[1], Value(2));
}

TEST_F(SqlTest, VariablesDeclareSet) {
  Exec("declare threshold int");
  Exec("set threshold = 10");
  Exec("create table t (v int)");
  Exec("insert into t values (5), (15)");
  Table r = Exec("select v from t where v > threshold");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(15));
}

TEST_F(SqlTest, SetWithScalarSubquery) {
  Exec("create table z (payload int)");
  Exec("insert into z values (1), (2), (3)");
  Exec("declare cnt int; set cnt = 0");
  Exec("set cnt = cnt + (select count(*) from z)");
  EXPECT_EQ(*engine_.GetVariable("cnt"), Value(int64_t{3}));
  Exec("set cnt = cnt + (select count(*) from z)");
  EXPECT_EQ(*engine_.GetVariable("cnt"), Value(int64_t{6}));
}

TEST_F(SqlTest, InsertSelectBetweenTables) {
  Exec("create table src (a int)");
  Exec("create table dst (a int)");
  Exec("insert into src values (1), (2), (3)");
  Exec("insert into dst select a from src where a >= 2");
  Table r = Exec("select count(*) n from dst");
  EXPECT_EQ(r.GetRow(0)[0], Value(int64_t{2}));
}

TEST_F(SqlTest, InsertColumnList) {
  Exec("create table t (a int, b string, c double)");
  Exec("insert into t (c, a) values (1.5, 7)");
  Table r = Exec("select a, b, c from t");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(7));
  EXPECT_TRUE(r.GetRow(0)[1].is_null());
  EXPECT_EQ(r.GetRow(0)[2], Value(1.5));
}

TEST_F(SqlTest, IntWidensOnInsert) {
  Exec("create table t (d double)");
  Exec("insert into t values (3)");
  Table r = Exec("select d from t");
  EXPECT_EQ(r.GetRow(0)[0], Value(3.0));
}

TEST_F(SqlTest, TypeErrors) {
  Exec("create table t (a int)");
  EXPECT_FALSE(ExecStatus("insert into t values ('x')").ok());
  EXPECT_FALSE(ExecStatus("select a + 'x' from t").ok());
  EXPECT_FALSE(ExecStatus("select nosuch from t").ok());
  EXPECT_FALSE(ExecStatus("select * from nosuch_table").ok());
}

TEST_F(SqlTest, DropStatements) {
  Exec("create table t (a int)");
  Exec("create basket s (a int)");
  Exec("drop table t");
  Exec("drop basket s");
  EXPECT_FALSE(ExecStatus("select * from t").ok());
  EXPECT_FALSE(engine_.HasBasket("s"));
}

// --------------------------------------------------------------------------
// Baskets and basket expressions
// --------------------------------------------------------------------------

TEST_F(SqlTest, CreateBasketAddsArrivalColumn) {
  Exec("create basket s (tag timestamp, payload int)");
  auto b = engine_.GetBasket("s");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*b)->has_arrival_column());
}

TEST_F(SqlTest, BasketCheckConstraintSilentFilter) {
  Exec("create basket s (v int) check (v >= 0) check (v < 100)");
  Exec("insert into s values (5), (-1), (250), (42)");
  // Violators were silently dropped, not rejected.
  Table r = Exec("select v from s order by v");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value(5));
  EXPECT_EQ(r.GetRow(1)[0], Value(42));
  auto b = engine_.GetBasket("s");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->stats().dropped, 2u);
}

TEST_F(SqlTest, CheckOnTableRejected) {
  EXPECT_FALSE(ExecStatus("create table t (v int) check (v > 0)").ok());
}

TEST_F(SqlTest, BasketReadOutsideBracketsPeeks) {
  Exec("create basket s (payload int)");
  Exec("insert into s values (1), (2)");
  Table r1 = Exec("select payload from s");
  EXPECT_EQ(r1.num_rows(), 2u);
  // Reading again: still there (temporary-table semantics, §3.4).
  Table r2 = Exec("select payload from s");
  EXPECT_EQ(r2.num_rows(), 2u);
}

TEST_F(SqlTest, PaperQueryQ1SelectAllConsumes) {
  // (q1) select * from [select * from R] as S where S.a > v1
  Exec("create basket r (a int)");
  Exec("insert into r values (1), (5), (9)");
  Table out = Exec("select * from [select * from r] as s where s.a > 4");
  ASSERT_EQ(out.num_rows(), 2u);
  // All tuples were referenced by the basket expression -> basket empty.
  EXPECT_EQ((*engine_.GetBasket("r"))->size(), 0u);
}

TEST_F(SqlTest, PaperQueryQ2PredicateWindow) {
  // (q2) select * from [select * from R where R.b < v2] as S where S.a > v1
  Exec("create basket r (a int, b int)");
  Exec("insert into r values (1, 1), (5, 1), (9, 99)");
  Table out = Exec(
      "select * from [select * from r where r.b < 10] as s where s.a > 4");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.GetRow(0)[0], Value(5));
  // Only the two b<10 tuples were referenced/consumed; (9,99) remains.
  EXPECT_EQ((*engine_.GetBasket("r"))->size(), 1u);
}

TEST_F(SqlTest, InnerProjectionInBasketExpr) {
  Exec("create basket s (a int, b int)");
  Exec("insert into s values (1, 10), (2, 20)");
  Table out = Exec("select * from [select s.a from s] as z");
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.num_columns(), 1u);
  EXPECT_EQ(out.schema().field(0).name, "a");
}

TEST_F(SqlTest, StarSkipsArrivalColumn) {
  Exec("create basket s (payload int)");
  Exec("insert into s values (1)");
  Table out = Exec("select * from [select * from s] as z");
  ASSERT_EQ(out.num_columns(), 1u);
  EXPECT_EQ(out.schema().field(0).name, "payload");
}

TEST_F(SqlTest, ArrivalColumnAccessibleExplicitly) {
  Exec("create basket s (payload int)");
  clock_.SetTime(42);
  Exec("insert into s values (7)");
  Table out = Exec("select z.dc_arrival from [select * from s] as z");
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.GetRow(0)[0], Value(int64_t{42}));
}

TEST_F(SqlTest, PaperOutlierFilter) {
  // §5: insert into outliers select b.tag, b.payload from
  //     [select top 20 from X order by tag] as b where b.payload > 100.
  Exec("create basket x (tag int, payload int)");
  Exec("create table outliers (tag int, payload int)");
  std::string ins = "insert into x values ";
  for (int i = 0; i < 25; ++i) {
    if (i) ins += ", ";
    ins += "(" + std::to_string(100 - i) + ", " + std::to_string(i * 10) + ")";
  }
  Exec(ins);
  Exec("insert into outliers select b.tag, b.payload from "
       "[select top 20 from x order by tag] as b where b.payload > 100");
  // The 20 lowest tags were taken (tags 76..95 = payloads 240..50 desc);
  // payload >100 among them.
  Table r = Exec("select count(*) n from outliers");
  EXPECT_EQ(r.GetRow(0)[0], Value(int64_t{14}));
  // 20 consumed, 5 remain.
  EXPECT_EQ((*engine_.GetBasket("x"))->size(), 5u);
}

TEST_F(SqlTest, TopWindowWaits) {
  Exec("create basket x (v int)");
  Exec("insert into x values (1), (2)");
  Table r = Exec("select * from [select top 5 from x] as w");
  EXPECT_EQ(r.num_rows(), 0u);
  EXPECT_EQ((*engine_.GetBasket("x"))->size(), 2u);
}

TEST_F(SqlTest, WithBlockSplitsStream) {
  // §5 split example.
  Exec("create basket x (payload int)");
  Exec("create table y (payload int)");
  Exec("create table z (payload int)");
  Exec("insert into x values (50), (150), (250)");
  Exec("with a as [select * from x] begin "
       "insert into y select * from a where a.payload > 100; "
       "insert into z select * from a where a.payload <= 200; "
       "end");
  EXPECT_EQ(Exec("select count(*) n from y").GetRow(0)[0], Value(int64_t{2}));
  EXPECT_EQ(Exec("select count(*) n from z").GetRow(0)[0], Value(int64_t{2}));
  EXPECT_EQ((*engine_.GetBasket("x"))->size(), 0u);
}

TEST_F(SqlTest, MergeJoinConsumesMatched) {
  // §5 merge: select A.* from [select * from X,Y where X.id=Y.id] as A.
  Exec("create basket x (id int, v int)");
  Exec("create basket y (id int, w int)");
  Exec("insert into x values (1, 10), (2, 20), (3, 30)");
  Exec("insert into y values (2, 200), (4, 400)");
  Table r = Exec("select * from [select * from x, y where x.id = y.id] as a");
  ASSERT_EQ(r.num_rows(), 1u);
  // Matched tuples removed from both baskets; residue awaits late arrivals.
  EXPECT_EQ((*engine_.GetBasket("x"))->size(), 2u);
  EXPECT_EQ((*engine_.GetBasket("y"))->size(), 1u);
  // Delayed arrival completes another pair.
  Exec("insert into x values (4, 40)");
  Table r2 = Exec("select * from [select * from x, y where x.id = y.id] as a");
  EXPECT_EQ(r2.num_rows(), 1u);
  EXPECT_EQ((*engine_.GetBasket("y"))->size(), 0u);
}

TEST_F(SqlTest, GarbageCollectionQuery) {
  // §5: insert into trash [select all from X where X.tag < now() - 1 hour].
  Exec("create basket x (tag timestamp, payload int)");
  Exec("create table trash (tag timestamp, payload int)");
  clock_.SetTime(2 * 3600 * kMicrosPerSecond);  // t = 2h
  Exec("insert into x values (0, 1)");          // stale
  Exec("insert into x values (7000000000, 2)"); // fresh (within the hour)
  Exec("insert into trash [select all from x where x.tag < now() - "
       "interval 1 hour]");
  EXPECT_EQ(Exec("select count(*) n from trash").GetRow(0)[0],
            Value(int64_t{1}));
  EXPECT_EQ((*engine_.GetBasket("x"))->size(), 1u);
}

TEST_F(SqlTest, AggregationOverWindow) {
  // §5 running average with batch processing (top 10 windows).
  Exec("create basket x (payload int)");
  Exec("declare cnt int; declare tot int; set cnt = 0; set tot = 0");
  std::string ins = "insert into x values ";
  for (int i = 1; i <= 10; ++i) {
    if (i > 1) ins += ", ";
    ins += "(" + std::to_string(i) + ")";
  }
  Exec(ins);
  Exec("with z as [select top 10 payload from x] begin "
       "set cnt = cnt + (select count(*) from z); "
       "set tot = tot + (select sum(payload) from z); "
       "end");
  EXPECT_EQ(*engine_.GetVariable("cnt"), Value(int64_t{10}));
  EXPECT_EQ(*engine_.GetVariable("tot"), Value(int64_t{55}));
}

TEST_F(SqlTest, BasketExprRequiresBasket) {
  Exec("create table t (a int)");
  EXPECT_FALSE(ExecStatus("select * from [select * from t] as z").ok());
}

// --------------------------------------------------------------------------
// Continuous queries
// --------------------------------------------------------------------------

TEST_F(SqlTest, RegisterContinuousInsert) {
  Exec("create basket src (payload int)");
  Exec("create basket dst (payload int)");
  auto f = session_.RegisterContinuousQuery(
      "route", "insert into dst select * from [select * from src "
               "where src.payload > 10] as s");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  Exec("insert into src values (5), (50)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine_.GetBasket("dst"))->size(), 1u);
  // Unmatched tuple remains until some query consumes it.
  EXPECT_EQ((*engine_.GetBasket("src"))->size(), 1u);
  // More input, another firing.
  Exec("insert into src values (99)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine_.GetBasket("dst"))->size(), 2u);
}

TEST_F(SqlTest, ContinuousSelectWithSink) {
  Exec("create basket src (payload int)");
  size_t seen = 0;
  auto f = session_.RegisterContinuousSelect(
      "watch", "select * from [select * from src] as s",
      [&](const Table& batch) -> Status {
        seen += batch.num_rows();
        return Status::OK();
      });
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  Exec("insert into src values (1), (2), (3)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ((*engine_.GetBasket("src"))->size(), 0u);
}

TEST_F(SqlTest, ContinuousTopWindowThreshold) {
  Exec("create basket src (payload int)");
  Exec("create basket dst (payload int)");
  auto f = session_.RegisterContinuousQuery(
      "windowed",
      "insert into dst select * from [select top 3 from src] as w");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // The factory's threshold is 3: two tuples do not fire it.
  Exec("insert into src values (1), (2)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine_.GetBasket("dst"))->size(), 0u);
  Exec("insert into src values (3)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  EXPECT_EQ((*engine_.GetBasket("dst"))->size(), 3u);
}

TEST_F(SqlTest, ExplainDescribesContinuousQuery) {
  Exec("create basket src (payload int)");
  Exec("create basket dst (payload int)");
  auto plan = session_.Explain(
      "insert into dst select * from [select top 20 from src order by "
      "payload] as w where w.payload > 100");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("[continuous query]"), std::string::npos);
  EXPECT_NE(plan->find("input basket 'src' (fires at >= 20"), std::string::npos);
  EXPECT_NE(plan->find("basket-expression"), std::string::npos);
  EXPECT_NE(plan->find("filter: (w.payload > 100)"), std::string::npos);
  EXPECT_NE(plan->find("top 20"), std::string::npos);
}

TEST_F(SqlTest, ExplainDescribesOneTimeJoinAggregate) {
  auto plan = session_.Explain(
      "select a.k, count(*) n from t1 a, t2 b where a.k = b.k and a.v > 5 "
      "group by a.k order by n desc limit 3");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("[one-time]"), std::string::npos);
  EXPECT_NE(plan->find("join:"), std::string::npos);
  EXPECT_NE(plan->find("aggregate: group=a.k"), std::string::npos);
  EXPECT_NE(plan->find("order by: n desc"), std::string::npos);
  EXPECT_NE(plan->find("top 3"), std::string::npos);
}

TEST_F(SqlTest, ExplainWithBlock) {
  Exec("create basket x (payload int)");
  Exec("create table y (payload int)");
  auto plan = session_.Explain(
      "with a as [select * from x] begin "
      "insert into y select * from a where a.payload > 100; end");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("WITH-block binding 'a'"), std::string::npos);
  EXPECT_NE(plan->find("[continuous query]"), std::string::npos);
  EXPECT_NE(plan->find("input basket 'x'"), std::string::npos);
}

TEST_F(SqlTest, ColumnNamedMinuteAndDayAllowed) {
  // Time-unit words are contextual, not reserved.
  Exec("create table t (minute int, day int, hour int)");
  Exec("insert into t values (5, 3, 7)");
  Table r = Exec("select minute, day, hour from t where minute = 5");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[2], Value(7));
}

TEST_F(SqlTest, OneTimeQueryRejectedAsContinuous) {
  Exec("create table t (a int)");
  auto f = session_.RegisterContinuousQuery("bad", "select * from t");
  EXPECT_FALSE(f.ok());
}

TEST_F(SqlTest, OrderByMultipleKeysAndDirections) {
  Exec("create table t (a int, b string)");
  Exec("insert into t values (1,'x'), (2,'x'), (1,'y'), (2,'y')");
  Table r = Exec("select a, b from t order by b desc, a asc");
  ASSERT_EQ(r.num_rows(), 4u);
  EXPECT_EQ(r.GetRow(0)[1], Value("y"));
  EXPECT_EQ(r.GetRow(0)[0], Value(1));
  EXPECT_EQ(r.GetRow(1)[0], Value(2));
  EXPECT_EQ(r.GetRow(2)[1], Value("x"));
}

TEST_F(SqlTest, BetweenAndIsNull) {
  Exec("create table t (a int)");
  Exec("insert into t values (1), (5), (9)");
  Exec("insert into t (a) select a from t where a < 0");  // no rows
  Table r = Exec("select a from t where a between 2 and 8");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(5));
  r = Exec("select count(*) n from t where a is not null");
  EXPECT_EQ(r.GetRow(0)[0], Value(int64_t{3}));
}

TEST_F(SqlTest, DistinctStringsPreserveFirstSeenOrder) {
  Exec("create table t (s string)");
  Exec("insert into t values ('b'), ('a'), ('b'), ('c'), ('a')");
  Table r = Exec("select distinct s from t");
  ASSERT_EQ(r.num_rows(), 3u);
  EXPECT_EQ(r.GetRow(0)[0], Value("b"));
  EXPECT_EQ(r.GetRow(1)[0], Value("a"));
  EXPECT_EQ(r.GetRow(2)[0], Value("c"));
}

TEST_F(SqlTest, NegativeNumbersAndUnaryMinus) {
  Exec("create table t (a int)");
  Exec("insert into t values (-3), (4)");
  Table r = Exec("select -a neg, abs(a) mag from t order by a");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value(3));
  EXPECT_EQ(r.GetRow(0)[1], Value(3));
  EXPECT_EQ(r.GetRow(1)[0], Value(-4));
}

TEST_F(SqlTest, LimitAfterOrder) {
  Exec("create table t (a int)");
  Exec("insert into t values (5), (1), (9), (3)");
  Table r = Exec("select a from t order by a desc limit 2");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value(9));
  EXPECT_EQ(r.GetRow(1)[0], Value(5));
}

TEST_F(SqlTest, BasketToBasketInsertRestampsArrival) {
  Exec("create basket a (v int)");
  Exec("create basket b (v int)");
  clock_.SetTime(100);
  Exec("insert into a values (7)");
  clock_.SetTime(500);
  Exec("insert into b select * from [select * from a] as z");
  Table r = Exec("select z.dc_arrival from [select * from b] as z");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(int64_t{500}));
}

TEST_F(SqlTest, JoinBasketPeekWithTable) {
  // A basket read outside brackets joins with a persistent table — the
  // "streams and persistent tables interchangeably" capability.
  Exec("create basket readings (sensor int, temp int)");
  Exec("create table sensors (id int, name string)");
  Exec("insert into sensors values (1, 'roof'), (2, 'cellar')");
  Exec("insert into readings values (1, 30), (2, 12), (1, 31)");
  Table r = Exec(
      "select s.name, count(*) n from readings r, sensors s "
      "where r.sensor = s.id group by s.name order by s.name");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value("cellar"));
  EXPECT_EQ(r.GetRow(0)[1], Value(int64_t{1}));
  EXPECT_EQ(r.GetRow(1)[1], Value(int64_t{2}));
  // The peek consumed nothing.
  EXPECT_EQ((*engine_.GetBasket("readings"))->size(), 3u);
}

TEST_F(SqlTest, AvgOverWindowViaHaving) {
  Exec("create basket pos (seg int, speed int)");
  Exec("create table congested (seg int, lav double)");
  Exec("insert into pos values (1, 30), (1, 34), (2, 80), (2, 90), (3, 20)");
  Exec("insert into congested select z.seg, avg(z.speed) lav from "
       "[select * from pos] as z group by z.seg having avg(z.speed) < 40");
  Table r = Exec("select seg from congested order by seg");
  ASSERT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.GetRow(0)[0], Value(1));
  EXPECT_EQ(r.GetRow(1)[0], Value(3));
  EXPECT_EQ((*engine_.GetBasket("pos"))->size(), 0u);
}

TEST_F(SqlTest, ConstantFoldingInPredicate) {
  Exec("create table t (a int)");
  Exec("insert into t values (100), (4000)");
  Table r = Exec("select a from t where a > 10 * 60 + 400");
  ASSERT_EQ(r.num_rows(), 1u);
  EXPECT_EQ(r.GetRow(0)[0], Value(4000));
}

TEST_F(SqlTest, ContinuousQueryChain) {
  // Query chain topology (§6.1): src -> q1 -> mid -> q2 -> out.
  Exec("create basket src (payload int)");
  Exec("create basket mid (payload int)");
  Exec("create basket outb (payload int)");
  ASSERT_TRUE(session_
                  .RegisterContinuousQuery(
                      "q1", "insert into mid select * from [select * from src "
                            "where src.payload > 10] as s")
                  .ok());
  ASSERT_TRUE(session_
                  .RegisterContinuousQuery(
                      "q2", "insert into outb select * from [select * from mid "
                            "where mid.payload < 100] as s")
                  .ok());
  Exec("insert into src values (5), (50), (500)");
  ASSERT_TRUE(engine_.scheduler().RunUntilQuiescent().ok());
  auto outb = *engine_.GetBasket("outb");
  ASSERT_EQ(outb->size(), 1u);
  EXPECT_EQ(outb->Peek().GetRow(0)[0], Value(50));
}

}  // namespace
}  // namespace datacell::sql
