file(REMOVE_RECURSE
  "CMakeFiles/lroad_sql_test.dir/lroad_sql_test.cc.o"
  "CMakeFiles/lroad_sql_test.dir/lroad_sql_test.cc.o.d"
  "lroad_sql_test"
  "lroad_sql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lroad_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
