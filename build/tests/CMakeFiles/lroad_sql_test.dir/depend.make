# Empty dependencies file for lroad_sql_test.
# This may be replaced when dependencies are built.
