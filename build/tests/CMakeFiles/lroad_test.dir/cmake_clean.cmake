file(REMOVE_RECURSE
  "CMakeFiles/lroad_test.dir/lroad_test.cc.o"
  "CMakeFiles/lroad_test.dir/lroad_test.cc.o.d"
  "lroad_test"
  "lroad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lroad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
