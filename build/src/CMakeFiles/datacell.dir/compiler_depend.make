# Empty compiler generated dependencies file for datacell.
# This may be replaced when dependencies are built.
