file(REMOVE_RECURSE
  "libdatacell.a"
)
