
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/column/catalog.cc" "src/CMakeFiles/datacell.dir/column/catalog.cc.o" "gcc" "src/CMakeFiles/datacell.dir/column/catalog.cc.o.d"
  "/root/repo/src/column/column.cc" "src/CMakeFiles/datacell.dir/column/column.cc.o" "gcc" "src/CMakeFiles/datacell.dir/column/column.cc.o.d"
  "/root/repo/src/column/table.cc" "src/CMakeFiles/datacell.dir/column/table.cc.o" "gcc" "src/CMakeFiles/datacell.dir/column/table.cc.o.d"
  "/root/repo/src/column/type.cc" "src/CMakeFiles/datacell.dir/column/type.cc.o" "gcc" "src/CMakeFiles/datacell.dir/column/type.cc.o.d"
  "/root/repo/src/column/value.cc" "src/CMakeFiles/datacell.dir/column/value.cc.o" "gcc" "src/CMakeFiles/datacell.dir/column/value.cc.o.d"
  "/root/repo/src/core/basket.cc" "src/CMakeFiles/datacell.dir/core/basket.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/basket.cc.o.d"
  "/root/repo/src/core/basket_expression.cc" "src/CMakeFiles/datacell.dir/core/basket_expression.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/basket_expression.cc.o.d"
  "/root/repo/src/core/emitter.cc" "src/CMakeFiles/datacell.dir/core/emitter.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/emitter.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/datacell.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/engine.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/datacell.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/factory.cc.o.d"
  "/root/repo/src/core/metronome.cc" "src/CMakeFiles/datacell.dir/core/metronome.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/metronome.cc.o.d"
  "/root/repo/src/core/receptor.cc" "src/CMakeFiles/datacell.dir/core/receptor.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/receptor.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/datacell.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/scheduler.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/CMakeFiles/datacell.dir/core/strategy.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/strategy.cc.o.d"
  "/root/repo/src/core/window.cc" "src/CMakeFiles/datacell.dir/core/window.cc.o" "gcc" "src/CMakeFiles/datacell.dir/core/window.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/datacell.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/datacell.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/datacell.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/datacell.dir/expr/expr.cc.o.d"
  "/root/repo/src/lroad/driver.cc" "src/CMakeFiles/datacell.dir/lroad/driver.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/driver.cc.o.d"
  "/root/repo/src/lroad/generator.cc" "src/CMakeFiles/datacell.dir/lroad/generator.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/generator.cc.o.d"
  "/root/repo/src/lroad/history.cc" "src/CMakeFiles/datacell.dir/lroad/history.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/history.cc.o.d"
  "/root/repo/src/lroad/queries.cc" "src/CMakeFiles/datacell.dir/lroad/queries.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/queries.cc.o.d"
  "/root/repo/src/lroad/queries_sql.cc" "src/CMakeFiles/datacell.dir/lroad/queries_sql.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/queries_sql.cc.o.d"
  "/root/repo/src/lroad/types.cc" "src/CMakeFiles/datacell.dir/lroad/types.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/types.cc.o.d"
  "/root/repo/src/lroad/validator.cc" "src/CMakeFiles/datacell.dir/lroad/validator.cc.o" "gcc" "src/CMakeFiles/datacell.dir/lroad/validator.cc.o.d"
  "/root/repo/src/net/actuator.cc" "src/CMakeFiles/datacell.dir/net/actuator.cc.o" "gcc" "src/CMakeFiles/datacell.dir/net/actuator.cc.o.d"
  "/root/repo/src/net/codec.cc" "src/CMakeFiles/datacell.dir/net/codec.cc.o" "gcc" "src/CMakeFiles/datacell.dir/net/codec.cc.o.d"
  "/root/repo/src/net/gateway.cc" "src/CMakeFiles/datacell.dir/net/gateway.cc.o" "gcc" "src/CMakeFiles/datacell.dir/net/gateway.cc.o.d"
  "/root/repo/src/net/sensor.cc" "src/CMakeFiles/datacell.dir/net/sensor.cc.o" "gcc" "src/CMakeFiles/datacell.dir/net/sensor.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/CMakeFiles/datacell.dir/net/socket.cc.o" "gcc" "src/CMakeFiles/datacell.dir/net/socket.cc.o.d"
  "/root/repo/src/ops/aggregate.cc" "src/CMakeFiles/datacell.dir/ops/aggregate.cc.o" "gcc" "src/CMakeFiles/datacell.dir/ops/aggregate.cc.o.d"
  "/root/repo/src/ops/delete.cc" "src/CMakeFiles/datacell.dir/ops/delete.cc.o" "gcc" "src/CMakeFiles/datacell.dir/ops/delete.cc.o.d"
  "/root/repo/src/ops/join.cc" "src/CMakeFiles/datacell.dir/ops/join.cc.o" "gcc" "src/CMakeFiles/datacell.dir/ops/join.cc.o.d"
  "/root/repo/src/ops/project.cc" "src/CMakeFiles/datacell.dir/ops/project.cc.o" "gcc" "src/CMakeFiles/datacell.dir/ops/project.cc.o.d"
  "/root/repo/src/ops/select.cc" "src/CMakeFiles/datacell.dir/ops/select.cc.o" "gcc" "src/CMakeFiles/datacell.dir/ops/select.cc.o.d"
  "/root/repo/src/ops/sort.cc" "src/CMakeFiles/datacell.dir/ops/sort.cc.o" "gcc" "src/CMakeFiles/datacell.dir/ops/sort.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/datacell.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/datacell.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/CMakeFiles/datacell.dir/sql/executor.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/executor.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/datacell.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/datacell.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/planner.cc" "src/CMakeFiles/datacell.dir/sql/planner.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/planner.cc.o.d"
  "/root/repo/src/sql/session.cc" "src/CMakeFiles/datacell.dir/sql/session.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/session.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/datacell.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/datacell.dir/sql/token.cc.o.d"
  "/root/repo/src/storage/persist.cc" "src/CMakeFiles/datacell.dir/storage/persist.cc.o" "gcc" "src/CMakeFiles/datacell.dir/storage/persist.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/datacell.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/datacell.dir/util/clock.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/datacell.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/datacell.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/datacell.dir/util/random.cc.o" "gcc" "src/CMakeFiles/datacell.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/datacell.dir/util/status.cc.o" "gcc" "src/CMakeFiles/datacell.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/datacell.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/datacell.dir/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
