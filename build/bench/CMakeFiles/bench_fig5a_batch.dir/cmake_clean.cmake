file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_batch.dir/bench_fig5a_batch.cc.o"
  "CMakeFiles/bench_fig5a_batch.dir/bench_fig5a_batch.cc.o.d"
  "bench_fig5a_batch"
  "bench_fig5a_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
