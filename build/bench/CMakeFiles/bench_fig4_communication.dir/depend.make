# Empty dependencies file for bench_fig4_communication.
# This may be replaced when dependencies are built.
