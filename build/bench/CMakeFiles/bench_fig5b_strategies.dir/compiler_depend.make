# Empty compiler generated dependencies file for bench_fig5b_strategies.
# This may be replaced when dependencies are built.
