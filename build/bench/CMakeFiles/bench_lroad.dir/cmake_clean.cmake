file(REMOVE_RECURSE
  "CMakeFiles/bench_lroad.dir/bench_lroad.cc.o"
  "CMakeFiles/bench_lroad.dir/bench_lroad.cc.o.d"
  "bench_lroad"
  "bench_lroad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lroad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
