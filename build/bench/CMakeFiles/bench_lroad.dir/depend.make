# Empty dependencies file for bench_lroad.
# This may be replaced when dependencies are built.
