file(REMOVE_RECURSE
  "CMakeFiles/sensor_main.dir/sensor_main.cc.o"
  "CMakeFiles/sensor_main.dir/sensor_main.cc.o.d"
  "sensor"
  "sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
