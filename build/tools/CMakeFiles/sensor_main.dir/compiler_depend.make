# Empty compiler generated dependencies file for sensor_main.
# This may be replaced when dependencies are built.
