file(REMOVE_RECURSE
  "CMakeFiles/datacell_server.dir/datacell_server.cc.o"
  "CMakeFiles/datacell_server.dir/datacell_server.cc.o.d"
  "datacell_server"
  "datacell_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacell_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
