# Empty dependencies file for datacell_server.
# This may be replaced when dependencies are built.
