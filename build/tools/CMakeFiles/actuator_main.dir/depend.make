# Empty dependencies file for actuator_main.
# This may be replaced when dependencies are built.
