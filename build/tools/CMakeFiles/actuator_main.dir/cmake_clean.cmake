file(REMOVE_RECURSE
  "CMakeFiles/actuator_main.dir/actuator_main.cc.o"
  "CMakeFiles/actuator_main.dir/actuator_main.cc.o.d"
  "actuator"
  "actuator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actuator_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
