file(REMOVE_RECURSE
  "CMakeFiles/stream_sql.dir/stream_sql.cpp.o"
  "CMakeFiles/stream_sql.dir/stream_sql.cpp.o.d"
  "stream_sql"
  "stream_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
