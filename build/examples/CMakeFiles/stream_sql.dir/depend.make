# Empty dependencies file for stream_sql.
# This may be replaced when dependencies are built.
