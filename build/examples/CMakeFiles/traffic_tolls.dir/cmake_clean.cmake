file(REMOVE_RECURSE
  "CMakeFiles/traffic_tolls.dir/traffic_tolls.cpp.o"
  "CMakeFiles/traffic_tolls.dir/traffic_tolls.cpp.o.d"
  "traffic_tolls"
  "traffic_tolls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_tolls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
