# Empty dependencies file for traffic_tolls.
# This may be replaced when dependencies are built.
